"""FIFO scheduling: requests serviced strictly in arrival order.

The paper's trivial baseline (Section 3.1): each retrieval typically
switches to a random tape and positions to a random block, so FIFO's
service rate is insensitive to queue length and its delay grows linearly
with the queue.
"""

from __future__ import annotations

from typing import Optional

from .base import MajorDecision, Scheduler, SchedulerContext
from .sweep import ServiceEntry


class FifoScheduler(Scheduler):
    """Service exactly the oldest pending request per schedule."""

    name = "fifo"

    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        oldest = context.pending.oldest()
        if oldest is None:
            return None
        replicas = context.catalog.replicas_of(oldest.block_id)
        # FIFO is oblivious to scheduling concerns, but reading a mounted
        # copy over an unmounted one is plain I/O-stack behaviour.  The
        # fallback replica must be on a tape the pending list exposes
        # (multi-drive runs hide tapes claimed by other drives).
        visible = context.pending.candidate_tapes()
        chosen = next(
            (replica for replica in replicas if replica.tape_id == context.mounted_id),
            next(
                (replica for replica in replicas if replica.tape_id in visible),
                replicas[0],
            ),
        )
        context.pending.remove_many([oldest])
        entry = ServiceEntry(
            position_mb=chosen.position_mb,
            block_id=oldest.block_id,
            requests=[oldest],
        )
        return MajorDecision(tape_id=chosen.tape_id, entries=[entry])
