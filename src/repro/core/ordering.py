"""Alternative intra-tape retrieval orderings (ablation substrate).

The paper fixes the intra-tape execution order to a single *sweep*
(forward phase then reverse phase — the tape analogue of disk SCAN) and
never revisits the choice.  Its own related work ([8], Hillyer &
Silberschatz 1996) studies richer orderings for random I/O on one tape.
This module supplies the classic greedy alternative — nearest-neighbor
(SSTF-style): always read the remaining block whose start is closest to
the current head — so the sweep choice can be validated empirically
(``benchmarks/bench_ablations.py``).

A nearest-neighbor schedule has no direction discipline, so the
incremental rule "insert if still ahead of the head" relaxes to
"insertable while the schedule is running": the greedy pick simply
considers the new block too.
"""

from __future__ import annotations

from typing import List, Optional

from .sweep import ServiceEntry, SweepPhase


class NearestNeighborServiceList:
    """Greedy nearest-first execution; interface-compatible with
    :class:`~repro.core.sweep.ServiceList`."""

    def __init__(self, entries: List[ServiceEntry], head_mb: float) -> None:
        self.start_head_mb = float(head_mb)
        self._head_mb = float(head_mb)
        self._entries: List[ServiceEntry] = list(entries)
        self._in_flight: Optional[ServiceEntry] = None

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no reads remain to be started."""
        return not self._entries

    @property
    def in_flight(self) -> Optional[ServiceEntry]:
        """The entry currently being read, if any."""
        return self._in_flight

    @property
    def phase(self) -> SweepPhase:
        """Nearest-neighbor has no phases; report DONE only when empty."""
        return SweepPhase.DONE if self.is_empty else SweepPhase.FORWARD

    def remaining(self) -> List[ServiceEntry]:
        """Entries not yet started (greedy order resolved at pop time)."""
        return list(self._entries)

    def remaining_positions(self) -> List[float]:
        """Positions of not-yet-started entries (unordered)."""
        return [entry.position_mb for entry in self._entries]

    def find_block(self, block_id: int) -> Optional[ServiceEntry]:
        """A not-yet-started entry for ``block_id``, or ``None``."""
        for entry in self._entries:
            if entry.block_id == block_id:
                return entry
        return None

    # -- execution ---------------------------------------------------------
    def pop_next(self) -> ServiceEntry:
        """Start the remaining entry nearest to the current head."""
        if not self._entries:
            raise IndexError("pop from an empty service list")
        nearest_index = min(
            range(len(self._entries)),
            key=lambda index: (
                abs(self._entries[index].position_mb - self._head_mb),
                self._entries[index].position_mb,
            ),
        )
        entry = self._entries.pop(nearest_index)
        self._in_flight = entry
        self._head_mb = entry.position_mb  # advanced past data by the drive
        return entry

    def finish_in_flight(self) -> None:
        """Mark the in-flight read complete."""
        if self._in_flight is not None:
            self._head_mb = self._in_flight.position_mb
        self._in_flight = None

    # -- insertion ----------------------------------------------------------
    def can_insert(self, position_mb: float) -> bool:
        """Greedy order can always consider one more block."""
        return True

    def insert(self, entry: ServiceEntry) -> bool:
        """Add ``entry``; the greedy pick will reach it eventually."""
        self._entries.append(entry)
        return True
