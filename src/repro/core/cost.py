"""Analytic schedule cost model.

Computes, without touching any drive state, the execution time of a sweep
and the *effective bandwidth* of a candidate schedule (paper Section 3.1:
bytes retrieved divided by total seconds including tape-switch overhead).
The arithmetic mirrors :class:`repro.tape.drive.TapeDrive` exactly — a
property the test suite asserts — so scheduling decisions are consistent
with what the simulated hardware will actually do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..tape.timing import DriveTimingModel

#: Bytes per MB, used when converting block counts to bytes.
MB = 1 << 20


@dataclass(frozen=True)
class SweepCost:
    """Breakdown of a sweep's execution time."""

    locate_s: float
    read_s: float
    end_head_mb: float

    @property
    def total_s(self) -> float:
        """Locate plus read time for the sweep."""
        return self.locate_s + self.read_s


def sweep_cost(
    timing: DriveTimingModel,
    head_mb: float,
    positions: Sequence[float],
    block_mb: float,
    startup_pending: bool = True,
) -> SweepCost:
    """Cost of a forward-then-reverse sweep from ``head_mb``.

    ``positions`` are block start positions (any order, duplicates
    allowed once coalesced by the caller).  ``startup_pending`` mirrors
    the drive's state: whether a read begun without any repositioning
    would still pay the forward startup.  Returns the time split and the
    final head position (end of the last block read).
    """
    forward: List[float] = []
    reverse: List[float] = []
    for position in positions:
        if position >= head_mb:
            forward.append(position)
        else:
            reverse.append(position)
    forward.sort()
    reverse.sort(reverse=True)
    # The block size is fixed for the whole sweep, so only two read
    # costs ever occur; computing them once keeps the loop allocation-
    # and call-free without changing any float (same expression as
    # ``timing.read``).
    locate_forward = timing.locate_forward
    locate_reverse = timing.locate_reverse
    read_plain_s = timing.read(block_mb, startup=False)
    read_startup_s = timing.read(block_mb, startup=True)
    locate_s = 0.0
    read_s = 0.0
    head = head_mb
    for position in forward:
        distance = position - head
        if distance > 0:
            locate_s += locate_forward(distance)
            startup_pending = True
        read_s += read_startup_s if startup_pending else read_plain_s
        startup_pending = False
        head = position + block_mb
    for position in reverse:
        distance = head - position
        if distance > 0:
            locate_s += locate_reverse(distance, lands_on_bot=(position == 0))
            startup_pending = False
        read_s += read_startup_s if startup_pending else read_plain_s
        startup_pending = False
        head = position + block_mb
    return SweepCost(locate_s=locate_s, read_s=read_s, end_head_mb=head)


def schedule_time(
    timing: DriveTimingModel,
    positions: Sequence[float],
    block_mb: float,
    mounted: bool,
    head_mb: float,
    rewind_from_mb: float = 0.0,
) -> float:
    """Total seconds to service ``positions`` on a candidate tape.

    For the currently mounted tape (``mounted=True``) this is just the
    sweep from ``head_mb``.  For another tape it adds the full switch
    overhead — rewinding the mounted tape from ``rewind_from_mb``, eject,
    robot swap, load — and sweeps from position 0.
    """
    if mounted:
        return sweep_cost(timing, head_mb, positions, block_mb).total_s
    overhead = timing.switch_with_rewind(rewind_from_mb)
    return overhead + sweep_cost(timing, 0.0, positions, block_mb).total_s


def effective_bandwidth(
    timing: DriveTimingModel,
    positions: Sequence[float],
    block_mb: float,
    mounted: bool,
    head_mb: float,
    rewind_from_mb: float = 0.0,
) -> float:
    """Effective bandwidth (bytes/s) of servicing ``positions`` on a tape."""
    if not positions:
        return 0.0
    seconds = schedule_time(
        timing, positions, block_mb, mounted, head_mb, rewind_from_mb
    )
    if seconds <= 0:
        return float("inf")
    return len(positions) * block_mb * MB / seconds


@dataclass(frozen=True)
class ExtensionConstants:
    """Flattened timing constants for the envelope extension inner loop.

    The envelope scheduler's step-3 search evaluates an incremental
    bandwidth for *every* candidate prefix length on every tape; going
    through :class:`ExtensionCostTracker` costs three method calls plus
    memo-dict lookups per length.  For the plain piecewise-linear
    :class:`~repro.tape.timing.DriveTimingModel` those calls reduce to
    straight-line arithmetic over a handful of constants.  This bundle
    hoists them once so the search loop can run call-free.

    Every float here is produced by the timing model's own methods, and
    the consumer applies them with the exact expressions the tracker's
    ``locate_forward``/``locate_reverse``/``read`` calls would have
    evaluated, so the resulting bandwidths are bit-identical.  Only
    exact :class:`DriveTimingModel` instances qualify (a subclass may
    override the locate arithmetic): callers must check
    :func:`extension_constants` for ``None`` and fall back to the
    tracker.
    """

    short_threshold_mb: float
    forward_short_startup: float
    forward_short_rate: float
    forward_long_startup: float
    forward_long_rate: float
    reverse_short_startup: float
    reverse_short_rate: float
    reverse_long_startup: float
    reverse_long_rate: float
    bot_overhead_s: float
    read_plain_s: float
    read_startup_s: float
    switch_s: float


_EXTENSION_CONSTANTS: Dict[Tuple[DriveTimingModel, float], ExtensionConstants] = {}


def extension_constants(
    timing: DriveTimingModel, block_mb: float
) -> Optional[ExtensionConstants]:
    """The flattened constants for ``timing``, or ``None`` if ineligible.

    Eligibility is an exact-type check: subclasses of
    :class:`DriveTimingModel` (e.g. serpentine models) may override the
    locate arithmetic, so they keep the tracker-based slow path.
    Results are cached per ``(timing, block_mb)`` (the model is a
    frozen, hashable dataclass; equal models share equal constants).
    """
    if type(timing) is not DriveTimingModel:
        return None
    key = (timing, block_mb)
    cached = _EXTENSION_CONSTANTS.get(key)
    if cached is None:
        if len(_EXTENSION_CONSTANTS) >= 256:
            _EXTENSION_CONSTANTS.clear()
        cached = _EXTENSION_CONSTANTS[key] = ExtensionConstants(
            short_threshold_mb=timing.short_threshold_mb,
            forward_short_startup=timing.forward_short.startup,
            forward_short_rate=timing.forward_short.rate,
            forward_long_startup=timing.forward_long.startup,
            forward_long_rate=timing.forward_long.rate,
            reverse_short_startup=timing.reverse_short.startup,
            reverse_short_rate=timing.reverse_short.rate,
            reverse_long_startup=timing.reverse_long.startup,
            reverse_long_rate=timing.reverse_long.rate,
            bot_overhead_s=timing.bot_overhead_s,
            read_plain_s=timing.read(block_mb, startup=False),
            read_startup_s=timing.read(block_mb, startup=True),
            switch_s=timing.switch(),
        )
    return cached


class ExtensionCostTracker:
    """Incremental round-trip costs for envelope extension prefixes.

    For one tape's extension list (requests outside the envelope, sorted
    by position), tracks the cost of extending the envelope through the
    first ``j`` blocks: locate/read out from the envelope through the
    prefix, plus the reverse locate back to the envelope position, plus
    the tape-switch overhead when the tape is unmounted with a zero
    envelope (paper Section 3.2, step 3).  Each :meth:`extend` call is
    O(1), keeping the envelope algorithm's inner loop linear.
    """

    def __init__(
        self,
        timing: DriveTimingModel,
        envelope_mb: float,
        block_mb: float,
        charge_switch: bool,
    ) -> None:
        self._timing = timing
        self._envelope_mb = envelope_mb
        self._block_mb = block_mb
        self._switch_s = timing.switch() if charge_switch else 0.0
        self._outbound_s = 0.0
        self._head = envelope_mb
        self._startup_pending = True
        self._count = 0
        # Fixed block size means only two possible read costs; hoisting
        # them (and the locate methods) out of ``extend`` keeps the
        # envelope inner loop call-free with bit-identical floats.
        self._read_plain_s = timing.read(block_mb, startup=False)
        self._read_startup_s = timing.read(block_mb, startup=True)
        self._locate_forward = timing.locate_forward
        self._locate_reverse = timing.locate_reverse

    @property
    def count(self) -> int:
        """Number of blocks in the current prefix."""
        return self._count

    def extend(self, position_mb: float) -> float:
        """Add the block at ``position_mb`` to the prefix; return its cost.

        Returns the full incremental time cost of the extended prefix
        (outbound + return + switch), per the paper's definition.
        """
        if position_mb < self._head - self._block_mb:
            raise ValueError(
                f"extension list not sorted: {position_mb} behind head {self._head}"
            )
        distance = position_mb - self._head
        if distance > 0:
            self._outbound_s += self._locate_forward(distance)
            self._startup_pending = True
        self._outbound_s += (
            self._read_startup_s if self._startup_pending else self._read_plain_s
        )
        self._startup_pending = False
        self._head = position_mb + self._block_mb
        self._count += 1
        return self.prefix_cost()

    def prefix_cost(self) -> float:
        """Cost of the current prefix (outbound + return leg + switch)."""
        if self._count == 0:
            return self._switch_s
        return_s = self._locate_reverse(
            self._head - self._envelope_mb,
            lands_on_bot=(self._envelope_mb == 0),
        )
        return self._switch_s + self._outbound_s + return_s

    def prefix_bandwidth(self) -> float:
        """Incremental bandwidth (bytes/s) of the current prefix."""
        if self._count == 0:
            return 0.0
        cost = self.prefix_cost()
        if cost <= 0:
            return float("inf")
        return self._count * self._block_mb * MB / cost
