"""Tape-selection policies (paper Section 3.1).

A policy answers "which tape should the major rescheduler service next?"
given, for each tape, the set of pending requests that tape can satisfy.
The same five policies parameterize the static family, the dynamic
family, and (three of them) the envelope-extension algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..tape.timing import DriveTimingModel
from ..workload.requests import Request
from .cost import effective_bandwidth


def jukebox_order(tape_count: int, start_at: int) -> List[int]:
    """Circular slot order beginning *at* ``start_at`` (inclusive)."""
    if tape_count <= 0:
        return []
    start = start_at % tape_count
    return [(start + offset) % tape_count for offset in range(tape_count)]


@dataclass
class SelectionContext:
    """Everything a tape-selection policy may inspect.

    ``candidates`` maps each tape to the pending requests it can satisfy;
    ``positions_for`` resolves the physical positions those requests
    would be read from on that tape (the envelope algorithm restricts
    this to the upper envelope).
    """

    timing: DriveTimingModel
    block_mb: float
    tape_count: int
    mounted_id: Optional[int]
    head_mb: float
    candidates: Dict[int, List[Request]]
    positions_for: Callable[[int], Sequence[float]]
    oldest: Optional[Request] = None

    @property
    def anchor(self) -> int:
        """Slot from which tie-break enumeration starts (mounted or 0)."""
        return self.mounted_id if self.mounted_id is not None else 0

    def tapes_with_requests(self) -> List[int]:
        """Tapes with at least one candidate, in tie-break order."""
        return [
            tape_id
            for tape_id in jukebox_order(self.tape_count, self.anchor)
            if self.candidates.get(tape_id)
        ]


class TapeSelectionPolicy:
    """Base class; subclasses implement :meth:`select`."""

    #: Short name used in scheduler registry keys.
    name = "abstract"

    def select(self, context: SelectionContext) -> Optional[int]:
        """Return the tape to service next, or ``None`` if no candidates."""
        raise NotImplementedError


class RoundRobin(TapeSelectionPolicy):
    """Next tape in jukebox order *after* the mounted one with requests."""

    name = "round-robin"

    def select(self, context: SelectionContext) -> Optional[int]:
        order = jukebox_order(context.tape_count, context.anchor + 1)
        for tape_id in order:
            if context.candidates.get(tape_id):
                return tape_id
        return None


class MaxRequests(TapeSelectionPolicy):
    """Tape with the most candidate requests; ties favour the mounted slot."""

    name = "max-requests"

    def select(self, context: SelectionContext) -> Optional[int]:
        best: Optional[int] = None
        best_count = 0
        for tape_id in context.tapes_with_requests():
            count = len(context.candidates[tape_id])
            if count > best_count:
                best, best_count = tape_id, count
        return best


class MaxBandwidth(TapeSelectionPolicy):
    """Tape with the highest effective bandwidth for its candidate schedule."""

    name = "max-bandwidth"

    def select(self, context: SelectionContext) -> Optional[int]:
        best: Optional[int] = None
        best_bandwidth = -1.0
        for tape_id in context.tapes_with_requests():
            bandwidth = effective_bandwidth(
                context.timing,
                list(context.positions_for(tape_id)),
                context.block_mb,
                mounted=(tape_id == context.mounted_id),
                head_mb=context.head_mb,
                rewind_from_mb=context.head_mb if context.mounted_id is not None else 0.0,
            )
            if bandwidth > best_bandwidth:
                best, best_bandwidth = tape_id, bandwidth
        return best


class _OldestFirst(TapeSelectionPolicy):
    """Restrict candidates to tapes satisfying the oldest request, then delegate."""

    def __init__(self, inner: TapeSelectionPolicy) -> None:
        self._inner = inner

    def select(self, context: SelectionContext) -> Optional[int]:
        oldest = context.oldest
        if oldest is None:
            return self._inner.select(context)
        eligible = {
            tape_id: requests
            for tape_id, requests in context.candidates.items()
            if any(request.request_id == oldest.request_id for request in requests)
        }
        if not eligible:
            return self._inner.select(context)
        narrowed = SelectionContext(
            timing=context.timing,
            block_mb=context.block_mb,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            candidates=eligible,
            positions_for=context.positions_for,
            oldest=oldest,
        )
        return self._inner.select(narrowed)


class OldestRequestMaxRequests(_OldestFirst):
    """Satisfy the oldest request; break ties by max requests."""

    name = "oldest-max-requests"

    def __init__(self) -> None:
        super().__init__(MaxRequests())


class OldestRequestMaxBandwidth(_OldestFirst):
    """Satisfy the oldest request; break ties by max bandwidth."""

    name = "oldest-max-bandwidth"

    def __init__(self) -> None:
        super().__init__(MaxBandwidth())


#: All five named policies from Section 3.1, keyed by registry name.
POLICIES = {
    policy.name: policy
    for policy in (
        RoundRobin(),
        MaxRequests(),
        MaxBandwidth(),
        OldestRequestMaxRequests(),
        OldestRequestMaxBandwidth(),
    )
}
