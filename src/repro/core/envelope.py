"""The envelope-extension scheduling algorithm (paper Section 3.2).

The algorithm takes a global view across tapes.  The requests for
*non-replicated* blocks pin down, per tape, a prefix that must be
traversed no matter what — the initial *envelope*.  Requests whose
replicas already fall inside the envelope are absorbed for free; the
remaining requests are scheduled by repeatedly extending the envelope
with the prefix of some tape's outstanding requests that maximizes
*incremental bandwidth* (bytes gained per second of extra traversal),
then shrinking the envelope wherever a replicated block just became
reachable more cheaply on the newly extended tape.

The resulting *upper envelope* covers every pending request; a standard
tape-selection policy then picks which tape to visit first, and all
requests satisfiable inside the envelope on that tape form the sweep.

With no replicated blocks every request is its own envelope pin, steps
3-6 degenerate to absorbing each request on its only tape, and the
algorithm behaves exactly like the corresponding dynamic algorithm —
matching the paper's remark that max-bandwidth envelope "degenerates
into the dynamic max-bandwidth algorithm" without replicas.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..layout.catalog import BlockCatalog, Replica
from ..tape.timing import DriveTimingModel
from ..workload.requests import Request
from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .cost import ExtensionCostTracker
from .policies import SelectionContext, TapeSelectionPolicy, jukebox_order
from .sweep import ServiceEntry


@lru_cache(maxsize=256)
def _rank_after(tape_count: int, start_at: int) -> Dict[int, int]:
    """``tape_id -> rank`` in jukebox order starting at ``start_at``.

    Ranks depend only on ``(tape_count, start_at)``, so the dicts are
    shared across computers and calls.  Callers must treat the returned
    dict as read-only.
    """
    return {
        tape_id: rank
        for rank, tape_id in enumerate(jukebox_order(tape_count, start_at))
    }


@dataclass
class EnvelopeState:
    """The upper envelope and the per-request replica assignment."""

    #: Per-tape envelope position: the head position after reading the
    #: highest scheduled block on that tape (0 when the tape is untouched).
    envelope: Dict[int, float] = field(default_factory=dict)
    #: request_id -> the replica chosen to satisfy it.
    assignment: Dict[int, Replica] = field(default_factory=dict)
    #: Per-tape count of requests currently assigned to it.
    scheduled_count: Dict[int, int] = field(default_factory=dict)

    def assign(self, request: Request, replica: Replica) -> None:
        """Bind ``request`` to ``replica``, updating the per-tape counts."""
        previous = self.assignment.get(request.request_id)
        if previous is not None:
            self.scheduled_count[previous.tape_id] -= 1
        self.assignment[request.request_id] = replica
        self.scheduled_count[replica.tape_id] = (
            self.scheduled_count.get(replica.tape_id, 0) + 1
        )


class EnvelopeComputer:
    """Runs steps 1-6 of the major rescheduler's envelope construction."""

    def __init__(
        self,
        timing: DriveTimingModel,
        catalog: BlockCatalog,
        tape_count: int,
        mounted_id: Optional[int],
        head_mb: float,
        enable_shrink: bool = True,
    ) -> None:
        self._timing = timing
        self._catalog = catalog
        self._tape_count = tape_count
        self._mounted_id = mounted_id
        self._head_mb = head_mb
        self._block_mb = catalog.block_mb
        #: Step 5 (envelope shrinking) can be disabled for ablation
        #: studies of the algorithm's design choices.
        self._enable_shrink = enable_shrink

    # -- helpers --------------------------------------------------------
    def _rank_after_mounted(self) -> Dict[int, int]:
        anchor = self._mounted_id if self._mounted_id is not None else -1
        return _rank_after(self._tape_count, anchor + 1)

    def _inside(self, replica: Replica, state: EnvelopeState) -> bool:
        return replica.position_mb + self._block_mb <= state.envelope.get(
            replica.tape_id, 0.0
        )

    def _choose_absorption_replica(
        self, candidates: List[Replica], state: EnvelopeState, rank: Dict[int, int]
    ) -> Replica:
        """Step 2 tie-break: mounted tape first, else max scheduled count,
        then first in jukebox order after the mounted tape."""
        for replica in candidates:
            if replica.tape_id == self._mounted_id:
                return replica
        return max(
            candidates,
            key=lambda replica: (
                state.scheduled_count.get(replica.tape_id, 0),
                -rank[replica.tape_id],
            ),
        )

    # -- the algorithm ---------------------------------------------------
    def compute(self, requests: Sequence[Request]) -> EnvelopeState:
        """Compute the upper envelope covering all ``requests``.

        ``requests`` is not copied: the single defensive copy in the
        scheduling path is the caller's ``pending.snapshot()`` (or an
        equivalent list the caller owns).  Pass a sequence that will not
        be mutated while this call runs — do **not** wrap the argument
        in another ``list(...)``.

        Replica lookups are resolved against the catalog once, up
        front; the catalog cannot change during this synchronous call,
        so the cached answers are exactly what per-step queries would
        have returned.
        """
        self._request_index = {request.request_id: request for request in requests}
        # Per-compute replica cache and per-tape candidate rows, sorted
        # once by (position, request_id) — the same key every extension
        # used to re-sort by.
        catalog = self._catalog
        replicas_of: Dict[int, Tuple[Replica, ...]] = {}
        by_tape: Dict[int, List[Tuple[float, int, Request]]] = {}
        for request in requests:
            block_id = request.block_id
            replicas = replicas_of.get(block_id)
            if replicas is None:
                replicas = replicas_of[block_id] = catalog.replicas_of(block_id)
            for replica in replicas:
                by_tape.setdefault(replica.tape_id, []).append(
                    (replica.position_mb, request.request_id, request)
                )
        for rows in by_tape.values():
            rows.sort(key=lambda row: (row[0], row[1]))
        self._replicas_of = replicas_of
        self._by_tape = by_tape

        state = EnvelopeState(
            envelope={tape_id: 0.0 for tape_id in range(self._tape_count)}
        )
        rank = self._rank_after_mounted()
        block_mb = self._block_mb

        # Step 1: pin the envelope with the highest non-replicated request
        # per tape, and with the current head on the mounted tape.
        for request in requests:
            replicas = replicas_of[request.block_id]
            if len(replicas) == 1:
                replica = replicas[0]
                end = replica.position_mb + block_mb
                if end > state.envelope[replica.tape_id]:
                    state.envelope[replica.tape_id] = end
        if self._mounted_id is not None:
            state.envelope[self._mounted_id] = max(
                state.envelope[self._mounted_id], self._head_mb
            )

        # Step 2: absorb everything already inside the envelope.  With a
        # single copy the tie-break trivially returns it, so the common
        # unreplicated case skips the candidate list entirely.
        envelope = state.envelope
        unscheduled: List[Request] = []
        for request in requests:
            replicas = replicas_of[request.block_id]
            if len(replicas) == 1:
                replica = replicas[0]
                if replica.position_mb + block_mb <= envelope.get(
                    replica.tape_id, 0.0
                ):
                    state.assign(request, replica)
                else:
                    unscheduled.append(request)
                continue
            candidates = [
                replica
                for replica in replicas
                if self._inside(replica, state)
            ]
            if candidates:
                state.assign(
                    request, self._choose_absorption_replica(candidates, state, rank)
                )
            else:
                unscheduled.append(request)

        # Steps 3-6: extend until every request is covered.
        while unscheduled:
            # Requests may have fallen inside the envelope since the last
            # extension; absorbing them costs no extra traversal.
            still_outside: List[Request] = []
            for request in unscheduled:
                replicas = self._replicas_of[request.block_id]
                if len(replicas) == 1:
                    replica = replicas[0]
                    if replica.position_mb + block_mb <= envelope.get(
                        replica.tape_id, 0.0
                    ):
                        state.assign(request, replica)
                    else:
                        still_outside.append(request)
                    continue
                candidates = [
                    replica
                    for replica in replicas
                    if self._inside(replica, state)
                ]
                if candidates:
                    state.assign(
                        request,
                        self._choose_absorption_replica(candidates, state, rank),
                    )
                else:
                    still_outside.append(request)
            unscheduled = still_outside
            if not unscheduled:
                break

            chosen = self._best_extension(unscheduled, state, rank)
            if chosen is None:  # pragma: no cover - every request has a replica
                raise RuntimeError("unscheduled requests with no extension candidates")
            tape_id, prefix = chosen

            # Step 4: extend the envelope through the chosen prefix.
            old_envelope = state.envelope[tape_id]
            state.envelope[tape_id] = prefix[-1][0] + block_mb
            prefix_ids = set()
            for position, request in prefix:
                state.assign(request, Replica(tape_id, position))
                prefix_ids.add(request.request_id)
            unscheduled = [
                request
                for request in unscheduled
                if request.request_id not in prefix_ids
            ]

            # Step 5: shrink other tapes' envelopes where the extension
            # made a cheaper copy reachable.
            if self._enable_shrink:
                self._shrink(state, tape_id, old_envelope, rank)

        return state

    def _best_extension(
        self,
        unscheduled: List[Request],
        state: EnvelopeState,
        rank: Dict[int, int],
    ) -> Optional[Tuple[int, List[Tuple[float, Request]]]]:
        """Step 3: the (tape, prefix) with maximal incremental bandwidth."""
        best_key: Optional[Tuple[float, int, int]] = None
        best: Optional[Tuple[int, List[Tuple[float, Request]]]] = None
        unscheduled_ids = {request.request_id for request in unscheduled}
        by_tape = self._by_tape
        for tape_id in range(self._tape_count):
            rows = by_tape.get(tape_id)
            if not rows:
                continue
            envelope = state.envelope[tape_id]
            # Rows are presorted by (position, request_id); skipping the
            # sub-envelope prefix with bisect and filtering to the still-
            # unscheduled ids yields exactly the list the per-request
            # scan-and-sort used to build.
            start = bisect_left(rows, envelope, key=lambda row: row[0])
            extension: List[Tuple[float, Request]] = [
                (position, request)
                for position, request_id, request in rows[start:]
                if request_id in unscheduled_ids
            ]
            if not extension:
                continue
            charge_switch = envelope == 0.0 and tape_id != self._mounted_id
            tracker = ExtensionCostTracker(
                self._timing, envelope, self._block_mb, charge_switch
            )
            for length in range(1, len(extension) + 1):
                position = extension[length - 1][0]
                # Coalesced duplicate blocks add requests but only one read.
                if length >= 2 and position == extension[length - 2][0]:
                    pass  # same physical block: no extra read cost
                else:
                    tracker.extend(position)
                bandwidth = tracker.prefix_bandwidth()
                key = (
                    bandwidth,
                    state.scheduled_count.get(tape_id, 0),
                    -rank[tape_id],
                )
                if best_key is None or key > best_key:
                    best_key = key
                    best = (tape_id, extension[:length])
        return best

    def _shrink(
        self,
        state: EnvelopeState,
        extended_tape: int,
        old_envelope: float,
        rank: Dict[int, int],
    ) -> None:
        """Step 5: move edge requests into the just-extended region of
        ``extended_tape`` and pull other envelopes back."""
        block_mb = self._block_mb
        new_envelope = state.envelope[extended_tape]
        while True:
            candidates: List[Tuple[int, int, int, Request, Replica]] = []
            for request_id, replica in state.assignment.items():
                tape_id = replica.tape_id
                if tape_id == extended_tape:
                    continue
                if replica.position_mb + block_mb != state.envelope.get(tape_id, 0.0):
                    continue  # not at the outer edge
                request = self._assigned_request(request_id)
                if request is None:
                    continue
                other = None
                for candidate in self._replicas_of[request.block_id]:
                    if candidate.tape_id == extended_tape:
                        other = candidate
                        break
                if other is None:
                    continue
                end = other.position_mb + block_mb
                if old_envelope < end <= new_envelope:
                    candidates.append(
                        (
                            state.scheduled_count.get(tape_id, 0),
                            tape_id,
                            rank[tape_id],
                            request,
                            other,
                        )
                    )
            if not candidates:
                return
            # Fewest scheduled requests first; ties to the lowest slot id.
            candidates.sort(key=lambda item: (item[0], item[1]))
            _count, tape_id, _rank, request, target = candidates[0]
            state.assign(request, target)
            self._recompute_envelope(state, tape_id)

    def _recompute_envelope(self, state: EnvelopeState, tape_id: int) -> None:
        """Pull ``tape_id``'s envelope back to its highest remaining block."""
        block_mb = self._block_mb
        floor = self._head_mb if tape_id == self._mounted_id else 0.0
        highest = floor
        for replica in state.assignment.values():
            if replica.tape_id == tape_id:
                highest = max(highest, replica.position_mb + block_mb)
        state.envelope[tape_id] = highest

    # ------------------------------------------------------------------
    # Per-compute working state (set at the top of ``compute``).
    _request_index: Dict[int, Request] = {}
    _replicas_of: Dict[int, Tuple[Replica, ...]] = {}
    _by_tape: Dict[int, List[Tuple[float, int, Request]]] = {}

    def _assigned_request(self, request_id: int) -> Optional[Request]:
        """Resolve a request id back to its object (set by compute())."""
        return self._request_index.get(request_id)


class EnvelopeScheduler(Scheduler):
    """Envelope-extension major rescheduler + envelope-aware incremental.

    ``policy`` chooses which tape inside the upper envelope to visit
    first (oldest-request / max-requests / max-bandwidth, Section 3.2).
    """

    def __init__(self, policy: TapeSelectionPolicy, enable_shrink: bool = True) -> None:
        self._policy = policy
        self._enable_shrink = enable_shrink
        self.name = f"envelope-{policy.name}"
        if not enable_shrink:
            self.name += "-noshrink"
        #: Upper envelope in effect during the current sweep.
        self._active_envelope: Dict[int, float] = {}

    @property
    def policy(self) -> TapeSelectionPolicy:
        """The tape-selection policy in use."""
        return self._policy

    # ------------------------------------------------------------------
    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        requests = context.pending.snapshot()
        if not requests:
            return None
        computer = EnvelopeComputer(
            timing=context.jukebox.timing,
            catalog=context.catalog,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            enable_shrink=self._enable_shrink,
        )
        state = computer.compute(requests)
        block_mb = context.block_mb

        # For each tape: every request satisfiable within the upper
        # envelope (a superset of the per-tape assignment).  The computer
        # already resolved every request's replicas against the catalog
        # during this synchronous call, so its cache answers the same
        # queries without re-touching the catalog.
        replicas_cache = computer._replicas_of
        envelope_map = state.envelope
        satisfiable: Dict[int, List[Request]] = {}
        for request in requests:
            for replica in replicas_cache[request.block_id]:
                if replica.position_mb + block_mb <= envelope_map.get(
                    replica.tape_id, 0.0
                ):
                    satisfiable.setdefault(replica.tape_id, []).append(request)

        def positions_for(tape_id: int) -> List[float]:
            seen = set()
            positions = []
            for request in satisfiable.get(tape_id, ()):
                if request.block_id in seen:
                    continue
                seen.add(request.block_id)
                # A block has at most one copy per tape, so the first
                # cached replica on ``tape_id`` is the ``replica_on``
                # answer.
                for replica in replicas_cache[request.block_id]:
                    if replica.tape_id == tape_id:
                        positions.append(replica.position_mb)
                        break
            return positions

        selection = SelectionContext(
            timing=context.jukebox.timing,
            block_mb=block_mb,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            candidates=satisfiable,
            positions_for=positions_for,
            oldest=context.pending.oldest(),
        )
        tape_id = self._policy.select(selection)
        if tape_id is None:  # pragma: no cover - envelope covers all requests
            return None

        chosen = satisfiable[tape_id]
        context.pending.remove_many(chosen)
        entries = coalesce_entries(chosen, tape_id, context.catalog)
        self._active_envelope = dict(state.envelope)
        return MajorDecision(tape_id=tape_id, entries=entries)

    # ------------------------------------------------------------------
    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        service = context.service
        mounted = context.mounted_id
        if service is None or mounted is None:
            context.pending.append(request)
            return False
        block_mb = context.block_mb
        envelope = self._active_envelope

        # Satisfiable on the current tape within the upper envelope:
        # insert into the sweep as the dynamic incremental scheduler does.
        if context.catalog.has_replica_on(request.block_id, mounted):
            replica = context.catalog.replica_on(request.block_id, mounted)
            if replica.position_mb + block_mb <= envelope.get(mounted, 0.0):
                if self._insert_into_sweep(service, request, replica):
                    return True
                context.pending.append(request)
                return False

        # Otherwise apply steps 3-5 for this single request: find the
        # cheapest envelope extension covering it.
        best_tape: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        best_replica: Optional[Replica] = None
        rank = _rank_after(context.tape_count, mounted + 1)
        for replica in context.catalog.replicas_of(request.block_id):
            tape_envelope = envelope.get(replica.tape_id, 0.0)
            if replica.position_mb + block_mb <= tape_envelope:
                # Inside another tape's envelope: servicing it there needs
                # no extension, so prefer that tape outright when no
                # current-tape extension wins; treated as infinite
                # incremental bandwidth.
                key = (float("inf"), -rank[replica.tape_id])
            else:
                charge_switch = tape_envelope == 0.0 and replica.tape_id != mounted
                tracker = ExtensionCostTracker(
                    context.jukebox.timing, tape_envelope, block_mb, charge_switch
                )
                tracker.extend(replica.position_mb)
                key = (tracker.prefix_bandwidth(), -rank[replica.tape_id])
            if best_key is None or key > best_key:
                best_key = key
                best_tape = replica.tape_id
                best_replica = replica

        if best_tape == mounted and best_replica is not None:
            if self._insert_into_sweep(service, request, best_replica):
                self._active_envelope[mounted] = max(
                    self._active_envelope.get(mounted, 0.0),
                    best_replica.position_mb + block_mb,
                )
                return True
        context.pending.append(request)
        return False

    def _insert_into_sweep(self, service, request: Request, replica: Replica) -> bool:
        existing = service.find_block(request.block_id)
        if existing is not None:
            existing.attach(request)
            return True
        entry = ServiceEntry(
            position_mb=replica.position_mb,
            block_id=request.block_id,
            requests=[request],
        )
        return service.insert(entry)

    def on_sweep_complete(self, context: SchedulerContext) -> None:
        self._active_envelope = {}
