"""The envelope-extension scheduling algorithm (paper Section 3.2).

The algorithm takes a global view across tapes.  The requests for
*non-replicated* blocks pin down, per tape, a prefix that must be
traversed no matter what — the initial *envelope*.  Requests whose
replicas already fall inside the envelope are absorbed for free; the
remaining requests are scheduled by repeatedly extending the envelope
with the prefix of some tape's outstanding requests that maximizes
*incremental bandwidth* (bytes gained per second of extra traversal),
then shrinking the envelope wherever a replicated block just became
reachable more cheaply on the newly extended tape.

The resulting *upper envelope* covers every pending request; a standard
tape-selection policy then picks which tape to visit first, and all
requests satisfiable inside the envelope on that tape form the sweep.

With no replicated blocks every request is its own envelope pin, steps
3-6 degenerate to absorbing each request on its only tape, and the
algorithm behaves exactly like the corresponding dynamic algorithm —
matching the paper's remark that max-bandwidth envelope "degenerates
into the dynamic max-bandwidth algorithm" without replicas.

Performance model
-----------------
Every major reschedule used to rebuild the computer's working state —
the per-block replica cache and the per-tape candidate rows, sorted by
``(position, request_id)`` — from the full pending set, which made the
envelope family the slowest scheduler by a wide margin.  Two layers fix
that without changing a single scheduling decision:

* :class:`EnvelopeIndex` keeps the candidate rows *incrementally*: it
  subscribes to the :class:`~repro.core.pending.PendingList`, absorbs
  each arrival into the affected tapes' rows (dirty-marking just those
  tapes for a cheap near-sorted re-sort at the next compute), and
  tombstones removals so completed sweeps shrink only the tapes they
  touched (a full compaction runs when dead rows outnumber live ones).
  :meth:`EnvelopeComputer.compute` then starts from the maintained
  index instead of re-deriving it, and falls back to a full rebuild
  whenever the index cannot vouch for itself (fault-masked catalogs,
  request-count mismatch, or no index at all).  The algorithm proper is
  re-run over identical inputs either way, so the resulting
  :class:`EnvelopeState` is bit-identical by construction — a property
  the equivalence suite asserts over random interleavings.

* Inside one compute, the step-3 search evaluates incremental
  bandwidth through flattened timing constants
  (:func:`~repro.core.cost.extension_constants`) instead of per-length
  tracker calls, and the absorb rescan after an extension only visits
  requests whose replica on the extended tape newly fell inside the
  envelope — the only requests whose absorption status can change.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from functools import lru_cache
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..layout.catalog import BlockCatalog, Replica
from ..tape.timing import DriveTimingModel
from ..workload.requests import Request
from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .cost import MB, ExtensionCostTracker, extension_constants
from .pending import PendingList
from .policies import SelectionContext, TapeSelectionPolicy, jukebox_order
from .sweep import ServiceEntry

#: Sort/bisect key of a candidate row
#: ``(position_mb, request_id, request, replica)``.
_row_position = itemgetter(0)


@lru_cache(maxsize=256)
def _rank_after(tape_count: int, start_at: int) -> Dict[int, int]:
    """``tape_id -> rank`` in jukebox order starting at ``start_at``.

    Ranks depend only on ``(tape_count, start_at)``, so the dicts are
    shared across computers and calls.  Callers must treat the returned
    dict as read-only.
    """
    return {
        tape_id: rank
        for rank, tape_id in enumerate(jukebox_order(tape_count, start_at))
    }


@dataclass
class EnvelopeState:
    """The upper envelope and the per-request replica assignment."""

    #: Per-tape envelope position: the head position after reading the
    #: highest scheduled block on that tape (0 when the tape is untouched).
    envelope: Dict[int, float] = field(default_factory=dict)
    #: request_id -> the replica chosen to satisfy it.
    assignment: Dict[int, Replica] = field(default_factory=dict)
    #: Per-tape count of requests currently assigned to it.
    scheduled_count: Dict[int, int] = field(default_factory=dict)

    def assign(self, request: Request, replica: Replica) -> None:
        """Bind ``request`` to ``replica``, updating the per-tape counts."""
        previous = self.assignment.get(request.request_id)
        if previous is not None:
            self.scheduled_count[previous.tape_id] -= 1
        self.assignment[request.request_id] = replica
        self.scheduled_count[replica.tape_id] = (
            self.scheduled_count.get(replica.tape_id, 0) + 1
        )


class EnvelopeIndex:
    """Incrementally maintained candidate rows over a pending list.

    The index mirrors the pending list's membership as per-tape rows
    ``(position_mb, request_id, request, replica)`` sorted by
    ``(position, request_id)`` — exactly the working state
    :meth:`EnvelopeComputer.compute` used to rebuild per call:

    * **Arrival** appends the request's replicas to the affected tapes'
      add-buffers and dirty-marks those tapes; the next compute merges
      and re-sorts only dirty tapes (timsort on a nearly-sorted list).
    * **Removal** (a scheduled sweep, QoS expiry, a fault losing a
      tape) tombstones the request ids; rows are a *superset* of the
      live pending set, and every consumer already filters rows against
      the live request-id set, so stale rows are invisible.  When dead
      rows outnumber live ones the index compacts — a single amortized
      rebuild of the tapes that shrank.
    * **Re-appearance** (a fault-requeued request id) just clears the
      tombstone: with a static catalog the physical rows are unchanged.

    The index disables itself on catalogs whose replica answers can
    change mid-run (``dynamic_replicas``, i.e. fault masking): there an
    append-time row could go stale, so the computer keeps the original
    rebuild-per-compute path.  ``live_count`` lets the computer verify
    the index covers exactly the request set it was handed and fall
    back otherwise.
    """

    #: Compact only past this many dead rows (skip trivial churn).
    _COMPACT_FLOOR = 512

    def __init__(self, pending: PendingList) -> None:
        self.pending = pending
        self.catalog: BlockCatalog = pending.catalog
        #: False when the catalog's replica map can change mid-run.
        self.enabled = not bool(getattr(self.catalog, "dynamic_replicas", False))
        #: block_id -> replicas, resolved once per block (static catalog).
        self.block_replicas: Dict[int, Tuple[Replica, ...]] = {}
        #: tape_id -> sorted rows (may contain tombstoned entries).
        self.rows: Dict[int, List[Tuple[float, int, Request, Replica]]] = {}
        self._adds: Dict[int, List[Tuple[float, int, Request, Replica]]] = {}
        self._dirty: Set[int] = set()
        self._dead: Set[int] = set()
        self._dead_rows = 0
        self._live_rows = 0
        #: Live (non-tombstoned) request count — must equal the pending
        #: list's length whenever the index is consistent.
        self.live_count = 0
        #: Compactions performed (observability for tests/benchmarks).
        self.compactions = 0
        if self.enabled:
            for request in pending:
                self.on_pending_append(request)
            pending.add_listener(self)

    def detach(self) -> None:
        """Unsubscribe from the pending list (when the scheduler moves on)."""
        if self.enabled:
            self.pending.remove_listener(self)

    def _replicas(self, block_id: int) -> Tuple[Replica, ...]:
        replicas = self.block_replicas.get(block_id)
        if replicas is None:
            replicas = self.block_replicas[block_id] = self.catalog.replicas_of(
                block_id
            )
        return replicas

    # -- PendingList listener protocol ----------------------------------
    def on_pending_append(self, request: Request) -> None:
        """Absorb one arrival into the affected tapes' rows."""
        request_id = request.request_id
        replicas = self._replicas(request.block_id)
        self.live_count += 1
        self._live_rows += len(replicas)
        if request_id in self._dead:
            # A requeued request id: its rows are still physically
            # present under a tombstone, and the catalog is static, so
            # clearing the tombstone restores them verbatim.
            self._dead.discard(request_id)
            self._dead_rows -= len(replicas)
            return
        adds = self._adds
        dirty = self._dirty
        for replica in replicas:
            tape_id = replica.tape_id
            bucket = adds.get(tape_id)
            if bucket is None:
                bucket = adds[tape_id] = []
            bucket.append((replica.position_mb, request_id, request, replica))
            dirty.add(tape_id)

    def on_pending_remove(self, requests: Sequence[Request]) -> None:
        """Tombstone removed requests; their rows die lazily."""
        dead = self._dead
        for request in requests:
            degree = len(self._replicas(request.block_id))
            dead.add(request.request_id)
            self._dead_rows += degree
            self._live_rows -= degree
            self.live_count -= 1

    # -- consumption -----------------------------------------------------
    def refresh(self, requests: Sequence[Request]) -> None:
        """Make the rows current: merge dirty tapes, compact if bloated.

        ``requests`` is the live pending snapshot the caller is about
        to compute over; it doubles as the row source for compaction.
        """
        if self._dirty:
            rows = self.rows
            adds = self._adds
            for tape_id in self._dirty:
                fresh = adds.pop(tape_id)
                bucket = rows.get(tape_id)
                if bucket is None:
                    fresh.sort()
                    rows[tape_id] = fresh
                else:
                    bucket.extend(fresh)
                    bucket.sort()
            self._dirty.clear()
        if self._dead_rows > self._COMPACT_FLOOR and self._dead_rows > self._live_rows:
            self._compact(requests)

    def _compact(self, requests: Sequence[Request]) -> None:
        """Drop tombstoned rows by rebuilding from the live snapshot."""
        rows: Dict[int, List[Tuple[float, int, Request, Replica]]] = {}
        live_rows = 0
        for request in requests:
            request_id = request.request_id
            replicas = self._replicas(request.block_id)
            live_rows += len(replicas)
            for replica in replicas:
                tape_id = replica.tape_id
                bucket = rows.get(tape_id)
                if bucket is None:
                    bucket = rows[tape_id] = []
                bucket.append((replica.position_mb, request_id, request, replica))
        for bucket in rows.values():
            bucket.sort()
        self.rows = rows
        self._adds = {}
        self._dirty.clear()
        self._dead.clear()
        self._dead_rows = 0
        self._live_rows = live_rows
        self.live_count = len(requests)
        self.compactions += 1


class EnvelopeComputer:
    """Runs steps 1-6 of the major rescheduler's envelope construction."""

    def __init__(
        self,
        timing: DriveTimingModel,
        catalog: BlockCatalog,
        tape_count: int,
        mounted_id: Optional[int],
        head_mb: float,
        enable_shrink: bool = True,
    ) -> None:
        self._timing = timing
        self._catalog = catalog
        self._tape_count = tape_count
        self._mounted_id = mounted_id
        self._head_mb = head_mb
        self._block_mb = catalog.block_mb
        #: Step 5 (envelope shrinking) can be disabled for ablation
        #: studies of the algorithm's design choices.
        self._enable_shrink = enable_shrink

    # -- helpers --------------------------------------------------------
    def _rank_after_mounted(self) -> Dict[int, int]:
        anchor = self._mounted_id if self._mounted_id is not None else -1
        return _rank_after(self._tape_count, anchor + 1)

    def _inside(self, replica: Replica, state: EnvelopeState) -> bool:
        return replica.position_mb + self._block_mb <= state.envelope.get(
            replica.tape_id, 0.0
        )

    def _choose_absorption_replica(
        self, candidates: List[Replica], state: EnvelopeState, rank: Dict[int, int]
    ) -> Replica:
        """Step 2 tie-break: mounted tape first, else max scheduled count,
        then first in jukebox order after the mounted tape."""
        for replica in candidates:
            if replica.tape_id == self._mounted_id:
                return replica
        return max(
            candidates,
            key=lambda replica: (
                state.scheduled_count.get(replica.tape_id, 0),
                -rank[replica.tape_id],
            ),
        )

    def _build_working_state(self, requests: Sequence[Request]) -> None:
        """The rebuild-from-scratch path: replica cache + sorted rows."""
        catalog = self._catalog
        replicas_of: Dict[int, Tuple[Replica, ...]] = {}
        by_tape: Dict[int, List[Tuple[float, int, Request, Replica]]] = {}
        for request in requests:
            block_id = request.block_id
            replicas = replicas_of.get(block_id)
            if replicas is None:
                replicas = replicas_of[block_id] = catalog.replicas_of(block_id)
            for replica in replicas:
                by_tape.setdefault(replica.tape_id, []).append(
                    (replica.position_mb, request.request_id, request, replica)
                )
        for rows in by_tape.values():
            rows.sort(key=lambda row: (row[0], row[1]))
        self._replicas_of = replicas_of
        self._by_tape = by_tape

    # -- the algorithm ---------------------------------------------------
    def compute(
        self, requests: Sequence[Request], index: Optional[EnvelopeIndex] = None
    ) -> EnvelopeState:
        """Compute the upper envelope covering all ``requests``.

        ``requests`` is not copied: the single defensive copy in the
        scheduling path is the caller's ``pending.snapshot()`` (or an
        equivalent list the caller owns).  Pass a sequence that will not
        be mutated while this call runs — do **not** wrap the argument
        in another ``list(...)``.

        ``index`` may supply an :class:`EnvelopeIndex` maintained over
        the same pending membership as ``requests``; the computer then
        reuses its replica cache and presorted rows instead of
        rebuilding them.  The index is used only when it can vouch for
        itself (enabled, same catalog, live count matching
        ``len(requests)``); otherwise this call silently falls back to
        the full rebuild.  Either way the algorithm runs over identical
        inputs, so the returned state is bit-identical.

        Replica lookups are resolved against the catalog once, up
        front; the catalog cannot change during this synchronous call,
        so the cached answers are exactly what per-step queries would
        have returned.
        """
        self._request_index = {request.request_id: request for request in requests}
        if (
            index is not None
            and index.enabled
            and index.catalog is self._catalog
            and index.live_count == len(requests)
        ):
            index.refresh(requests)
            self._replicas_of = index.block_replicas
            self._by_tape = index.rows
        else:
            self._build_working_state(requests)
        replicas_of = self._replicas_of
        by_tape = self._by_tape

        state = EnvelopeState(
            envelope={tape_id: 0.0 for tape_id in range(self._tape_count)}
        )
        rank = self._rank_after_mounted()
        block_mb = self._block_mb

        # Step 1: pin the envelope with the highest non-replicated request
        # per tape, and with the current head on the mounted tape.
        for request in requests:
            replicas = replicas_of[request.block_id]
            if len(replicas) == 1:
                replica = replicas[0]
                end = replica.position_mb + block_mb
                if end > state.envelope[replica.tape_id]:
                    state.envelope[replica.tape_id] = end
        if self._mounted_id is not None:
            state.envelope[self._mounted_id] = max(
                state.envelope[self._mounted_id], self._head_mb
            )

        # Step 2: absorb everything already inside the envelope.  With a
        # single copy the tie-break trivially returns it, so the common
        # unreplicated case skips the candidate scan entirely.  All
        # assignments here are first-time (nothing is assigned yet), so
        # the ``state.assign`` bookkeeping inlines to two dict writes —
        # the same applies to every absorb/extend assignment below
        # (only step 5's *re*-assignments need the full method).
        envelope = state.envelope
        assignment = state.assignment
        counts = state.scheduled_count
        counts_get = counts.get
        mounted = self._mounted_id
        unscheduled: List[Request] = []
        for request in requests:
            replicas = replicas_of[request.block_id]
            if len(replicas) == 1:
                replica = replicas[0]
                tape = replica.tape_id
                if replica.position_mb + block_mb <= envelope[tape]:
                    assignment[request.request_id] = replica
                    counts[tape] = counts_get(tape, 0) + 1
                else:
                    unscheduled.append(request)
                continue
            chosen_replica = None
            chosen_key = None
            for replica in replicas:
                tape = replica.tape_id
                if replica.position_mb + block_mb <= envelope[tape]:
                    if tape == mounted:
                        chosen_replica = replica
                        break
                    key = (counts_get(tape, 0), -rank[tape])
                    if chosen_key is None or key > chosen_key:
                        chosen_key = key
                        chosen_replica = replica
            if chosen_replica is not None:
                tape = chosen_replica.tape_id
                assignment[request.request_id] = chosen_replica
                counts[tape] = counts_get(tape, 0) + 1
            else:
                unscheduled.append(request)

        # Steps 3-6: extend until every request is covered.  Between
        # extensions, only the just-extended tape's envelope grew
        # (shrinking only lowers other tapes), so a request can newly
        # fall inside the envelope only through a replica on that tape
        # whose end landed in the extended window — ``newly`` names
        # those candidates and the rescan skips everything else.  On
        # first entry nothing has been extended since step 2 checked the
        # very same envelope, so the rescan is skipped entirely.
        #
        # The step-3 search is likewise incremental across rounds: a
        # tape's candidate list and best (bandwidth, prefix length) only
        # change when its envelope moved (extension or shrink) or when a
        # request with a replica on it left the unscheduled set.
        # ``extension_cache`` keeps per-tape (live rows, bandwidth,
        # length); ``stale`` maps each tape the next round must redo to
        # *how* its inputs moved — "ids" (requests left: refilter the
        # cached list), "grew" (envelope advanced: bisect + refilter),
        # "full" (envelope receded: rescan the index rows).  ``None``
        # means everything is stale (first round).
        newly: Optional[Set[int]] = None
        extension_cache: Dict[int, tuple] = {}
        stale: Optional[Dict[int, str]] = None
        while unscheduled:
            if newly:
                still_outside: List[Request] = []
                for request in unscheduled:
                    if request.request_id not in newly:
                        still_outside.append(request)
                        continue
                    replicas = replicas_of[request.block_id]
                    chosen_replica = None
                    chosen_key = None
                    for replica in replicas:
                        tape = replica.tape_id
                        if replica.position_mb + block_mb <= envelope[tape]:
                            if tape == mounted:
                                chosen_replica = replica
                                break
                            key = (counts_get(tape, 0), -rank[tape])
                            if chosen_key is None or key > chosen_key:
                                chosen_key = key
                                chosen_replica = replica
                    if chosen_replica is not None:
                        tape = chosen_replica.tape_id
                        assignment[request.request_id] = chosen_replica
                        counts[tape] = counts_get(tape, 0) + 1
                        if stale is not None:
                            # An absorbed request leaves the unscheduled
                            # set; tapes where its replicas sat at or
                            # beyond the envelope see a different scan.
                            for replica in replicas:
                                if replica.position_mb >= envelope[replica.tape_id]:
                                    stale.setdefault(replica.tape_id, "ids")
                    else:
                        still_outside.append(request)
                unscheduled = still_outside
            if not unscheduled:
                break

            chosen = self._best_extension(
                unscheduled, state, rank, extension_cache, stale
            )
            if chosen is None:  # pragma: no cover - every request has a replica
                raise RuntimeError("unscheduled requests with no extension candidates")
            tape_id, prefix = chosen

            # Step 4: extend the envelope through the chosen prefix.
            old_envelope = envelope[tape_id]
            new_envelope = prefix[-1][0] + block_mb
            envelope[tape_id] = new_envelope
            stale = {tape_id: "grew"}
            all_stale = self._tape_count == 1
            prefix_ids = set()
            for row in prefix:
                request_id = row[1]
                assignment[request_id] = row[3]
                prefix_ids.add(request_id)
                if all_stale:
                    continue
                # A scheduled request leaves every other tape's candidate
                # pool; only tapes scanning past its replica notice.
                for replica in replicas_of[row[2].block_id]:
                    if replica.position_mb >= envelope[replica.tape_id]:
                        stale.setdefault(replica.tape_id, "ids")
                all_stale = len(stale) == self._tape_count
            counts[tape_id] = counts_get(tape_id, 0) + len(prefix)
            unscheduled = [
                request
                for request in unscheduled
                if request.request_id not in prefix_ids
            ]

            # Candidates for the next absorb rescan: rows on the
            # extended tape whose end moved inside.  The bisect bound is
            # deliberately slack (rounding-proof); membership uses the
            # exact inequality the absorb pass applies.
            newly = set()
            rows = by_tape.get(tape_id)
            if rows:
                low = bisect_left(
                    rows, old_envelope - 2.0 * block_mb, key=_row_position
                )
                for row_index in range(low, len(rows)):
                    position = rows[row_index][0]
                    end = position + block_mb
                    if end > new_envelope:
                        break
                    if end > old_envelope:
                        newly.add(rows[row_index][1])

            # Step 5: shrink other tapes' envelopes where the extension
            # made a cheaper copy reachable.  A donor's envelope moved
            # *backwards*, so rows re-enter its candidate window and the
            # cached list cannot be refiltered — full rescan.
            if self._enable_shrink:
                for donor in self._shrink(state, tape_id, old_envelope, rank):
                    stale[donor] = "full"

        return state

    def _best_extension(
        self,
        unscheduled: List[Request],
        state: EnvelopeState,
        rank: Dict[int, int],
        cache: Optional[Dict[int, tuple]] = None,
        stale: Optional[Dict[int, str]] = None,
    ) -> Optional[Tuple[int, List[Tuple[float, int, Request, Replica]]]]:
        """Step 3: the (tape, prefix) with maximal incremental bandwidth.

        The fast path flattens the timing model into constants and runs
        the per-length bandwidth recurrence call-free, evaluating the
        exact float expressions :class:`ExtensionCostTracker` would
        have.  Prefix lengths ending on a coalesced duplicate position
        are skipped outright: they add a request but no read, so their
        key equals the previous length's and a strict comparison could
        never have selected them.  Within a tape the scheduled-count
        and rank tie-break keys are constants, so the per-tape winner
        is the first length attaining the maximum bandwidth — the same
        element the per-length scan selected.

        ``cache`` holds, per tape, ``(live_rows, bandwidth, length)``
        from earlier rounds of the same compute — ``live_rows`` being
        the tape's candidate rows beyond its envelope restricted to
        then-unscheduled requests.  ``stale`` says how each dirty
        tape's inputs moved since its cache entry: requests only ever
        *leave* the unscheduled set and an advanced envelope only
        *narrows* the window, so "ids"/"grew" tapes refilter their own
        (shrinking) cached list; only a receded envelope ("full", after
        step-5 shrinking) or the first round rereads the index rows.
        The arithmetic consumes the identical filtered sequence either
        way.  The cross-tape tie-break (scheduled count, jukebox rank)
        is re-evaluated every round from live state, cached or not.
        """
        constants = extension_constants(self._timing, self._block_mb)
        if constants is None:
            return self._best_extension_tracked(unscheduled, state, rank)
        block_mb = self._block_mb
        thr = constants.short_threshold_mb
        fwd_short_b = constants.forward_short_startup
        fwd_short_r = constants.forward_short_rate
        fwd_long_b = constants.forward_long_startup
        fwd_long_r = constants.forward_long_rate
        rev_short_b = constants.reverse_short_startup
        rev_short_r = constants.reverse_short_rate
        rev_long_b = constants.reverse_long_startup
        rev_long_r = constants.reverse_long_rate
        bot_s = constants.bot_overhead_s
        read_plain = constants.read_plain_s
        read_startup = constants.read_startup_s
        full_switch = constants.switch_s
        mounted = self._mounted_id
        scheduled_count = state.scheduled_count
        state_envelope = state.envelope

        unscheduled_ids = {request.request_id for request in unscheduled}
        by_tape = self._by_tape
        if cache is None:
            cache = {}
            stale = None
        rescan = range(self._tape_count) if stale is None else stale
        for tape_id in rescan:
            envelope = state_envelope[tape_id]
            mode = "full" if stale is None else stale[tape_id]
            if mode == "full":
                rows = by_tape.get(tape_id)
                if not rows:
                    cache[tape_id] = ((), None, 0)
                    continue
                start = bisect_left(rows, envelope, key=_row_position)
                live = [
                    row
                    for row in rows[start:]
                    if row[1] in unscheduled_ids
                ]
            else:
                rows = cache[tape_id][0]
                if mode == "grew":
                    start = bisect_left(rows, envelope, key=_row_position)
                    live = [
                        row
                        for row in rows[start:]
                        if row[1] in unscheduled_ids
                    ]
                else:  # "ids"
                    live = [row for row in rows if row[1] in unscheduled_ids]
            if not live:
                cache[tape_id] = ((), None, 0)
                continue
            switch_s = (
                full_switch if envelope == 0.0 and tape_id != mounted else 0.0
            )
            lands_on_bot = envelope == 0
            head = envelope
            startup_pending = True
            outbound = 0.0
            reads = 0
            length = 0
            tape_best_bandwidth: Optional[float] = None
            tape_best_length = 0
            previous_position: Optional[float] = None
            for row in live:
                position = row[0]
                length += 1
                if position == previous_position:
                    continue  # same physical block: identical cost and reads
                previous_position = position
                if position < head - block_mb:
                    raise ValueError(
                        f"extension list not sorted: {position} behind head {head}"
                    )
                distance = position - head
                if distance > 0:
                    outbound += (
                        fwd_short_b + fwd_short_r * distance
                        if distance <= thr
                        else fwd_long_b + fwd_long_r * distance
                    )
                    startup_pending = True
                outbound += read_startup if startup_pending else read_plain
                startup_pending = False
                head = position + block_mb
                reads += 1
                return_distance = head - envelope
                return_s = (
                    rev_short_b + rev_short_r * return_distance
                    if return_distance <= thr
                    else rev_long_b + rev_long_r * return_distance
                )
                if lands_on_bot:
                    return_s += bot_s
                cost = (switch_s + outbound) + return_s
                bandwidth = (
                    reads * block_mb * MB / cost if cost > 0 else float("inf")
                )
                if tape_best_bandwidth is None or bandwidth > tape_best_bandwidth:
                    tape_best_bandwidth = bandwidth
                    tape_best_length = length
            cache[tape_id] = (live, tape_best_bandwidth, tape_best_length)

        best_key: Optional[Tuple[float, int, int]] = None
        best_tape = -1
        best_length = 0
        for tape_id in range(self._tape_count):
            entry = cache.get(tape_id)
            if entry is None or entry[1] is None:
                continue
            key = (entry[1], scheduled_count.get(tape_id, 0), -rank[tape_id])
            if best_key is None or key > best_key:
                best_key = key
                best_tape = tape_id
                best_length = entry[2]
        if best_key is None:
            return None
        # The winning prefix, straight off the cached live rows (losing
        # tapes never materialize anything beyond their live list).
        return best_tape, cache[best_tape][0][:best_length]

    def _best_extension_tracked(
        self,
        unscheduled: List[Request],
        state: EnvelopeState,
        rank: Dict[int, int],
    ) -> Optional[Tuple[int, List[Tuple[float, int, Request, Replica]]]]:
        """The tracker-based step-3 scan (non-standard timing models)."""
        best_key: Optional[Tuple[float, int, int]] = None
        best: Optional[Tuple[int, List[Tuple[float, int, Request, Replica]]]] = None
        unscheduled_ids = {request.request_id for request in unscheduled}
        by_tape = self._by_tape
        for tape_id in range(self._tape_count):
            rows = by_tape.get(tape_id)
            if not rows:
                continue
            envelope = state.envelope[tape_id]
            start = bisect_left(rows, envelope, key=_row_position)
            extension = [row for row in rows[start:] if row[1] in unscheduled_ids]
            if not extension:
                continue
            charge_switch = envelope == 0.0 and tape_id != self._mounted_id
            tracker = ExtensionCostTracker(
                self._timing, envelope, self._block_mb, charge_switch
            )
            for length in range(1, len(extension) + 1):
                position = extension[length - 1][0]
                # Coalesced duplicate blocks add requests but only one read.
                if length >= 2 and position == extension[length - 2][0]:
                    pass  # same physical block: no extra read cost
                else:
                    tracker.extend(position)
                bandwidth = tracker.prefix_bandwidth()
                key = (
                    bandwidth,
                    state.scheduled_count.get(tape_id, 0),
                    -rank[tape_id],
                )
                if best_key is None or key > best_key:
                    best_key = key
                    best = (tape_id, extension[:length])
        return best

    def _shrink(
        self,
        state: EnvelopeState,
        extended_tape: int,
        old_envelope: float,
        rank: Dict[int, int],
    ) -> Set[int]:
        """Step 5: move edge requests into the just-extended region of
        ``extended_tape`` and pull other envelopes back.

        Returns the set of donor tapes whose envelopes were recomputed
        (so the caller can invalidate their cached extension results).
        """
        block_mb = self._block_mb
        new_envelope = state.envelope[extended_tape]
        donors: Set[int] = set()
        while True:
            candidates: List[Tuple[int, int, int, Request, Replica]] = []
            for request_id, replica in state.assignment.items():
                tape_id = replica.tape_id
                if tape_id == extended_tape:
                    continue
                if replica.position_mb + block_mb != state.envelope.get(tape_id, 0.0):
                    continue  # not at the outer edge
                request = self._assigned_request(request_id)
                if request is None:
                    continue
                other = None
                for candidate in self._replicas_of[request.block_id]:
                    if candidate.tape_id == extended_tape:
                        other = candidate
                        break
                if other is None:
                    continue
                end = other.position_mb + block_mb
                if old_envelope < end <= new_envelope:
                    candidates.append(
                        (
                            state.scheduled_count.get(tape_id, 0),
                            tape_id,
                            rank[tape_id],
                            request,
                            other,
                        )
                    )
            if not candidates:
                return donors
            # Fewest scheduled requests first; ties to the lowest slot id.
            candidates.sort(key=lambda item: (item[0], item[1]))
            _count, tape_id, _rank, request, target = candidates[0]
            state.assign(request, target)
            self._recompute_envelope(state, tape_id)
            donors.add(tape_id)

    def _recompute_envelope(self, state: EnvelopeState, tape_id: int) -> None:
        """Pull ``tape_id``'s envelope back to its highest remaining block."""
        block_mb = self._block_mb
        floor = self._head_mb if tape_id == self._mounted_id else 0.0
        highest = floor
        for replica in state.assignment.values():
            if replica.tape_id == tape_id:
                highest = max(highest, replica.position_mb + block_mb)
        state.envelope[tape_id] = highest

    # ------------------------------------------------------------------
    # Per-compute working state (set at the top of ``compute``).
    _request_index: Dict[int, Request] = {}
    _replicas_of: Dict[int, Tuple[Replica, ...]] = {}
    _by_tape: Dict[int, List[Tuple[float, int, Request, Replica]]] = {}

    def _assigned_request(self, request_id: int) -> Optional[Request]:
        """Resolve a request id back to its object (set by compute())."""
        return self._request_index.get(request_id)


class EnvelopeScheduler(Scheduler):
    """Envelope-extension major rescheduler + envelope-aware incremental.

    ``policy`` chooses which tape inside the upper envelope to visit
    first (oldest-request / max-requests / max-bandwidth, Section 3.2).
    """

    def __init__(self, policy: TapeSelectionPolicy, enable_shrink: bool = True) -> None:
        self._policy = policy
        self._enable_shrink = enable_shrink
        self.name = f"envelope-{policy.name}"
        if not enable_shrink:
            self.name += "-noshrink"
        #: Upper envelope in effect during the current sweep.
        self._active_envelope: Dict[int, float] = {}
        #: Incremental candidate index bound to the run's pending list
        #: (None when the pending list or catalog cannot support one).
        self._index: Optional[EnvelopeIndex] = None
        self._index_pending: Optional[object] = None

    @property
    def policy(self) -> TapeSelectionPolicy:
        """The tape-selection policy in use."""
        return self._policy

    # ------------------------------------------------------------------
    def _index_for(self, context: SchedulerContext) -> Optional[EnvelopeIndex]:
        """The incremental index for this run, created on first use.

        Requires a pending list that broadcasts membership changes
        (:meth:`~repro.core.pending.PendingList.add_listener`) and a
        static catalog shared between the pending list and the
        scheduling context.  Multi-drive pending views and fault-masked
        catalogs return ``None`` — those runs keep the full
        rebuild-per-compute path.
        """
        pending = context.pending
        if self._index_pending is pending:
            return self._index
        if self._index is not None:
            self._index.detach()
        self._index_pending = pending
        self._index = None
        if (
            callable(getattr(pending, "add_listener", None))
            and callable(getattr(pending, "remove_listener", None))
            and pending.catalog is context.catalog
        ):
            index = EnvelopeIndex(pending)
            if index.enabled:
                self._index = index
        return self._index

    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        requests = context.pending.snapshot()
        if not requests:
            return None
        computer = EnvelopeComputer(
            timing=context.jukebox.timing,
            catalog=context.catalog,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            enable_shrink=self._enable_shrink,
        )
        state = computer.compute(requests, index=self._index_for(context))
        block_mb = context.block_mb

        # For each tape: every request satisfiable within the upper
        # envelope (a superset of the per-tape assignment).  The computer
        # already resolved every request's replicas against the catalog
        # during this synchronous call, so its cache answers the same
        # queries without re-touching the catalog.
        replicas_cache = computer._replicas_of
        envelope_map = state.envelope
        satisfiable: Dict[int, List[Request]] = {}
        for request in requests:
            for replica in replicas_cache[request.block_id]:
                if replica.position_mb + block_mb <= envelope_map.get(
                    replica.tape_id, 0.0
                ):
                    satisfiable.setdefault(replica.tape_id, []).append(request)

        def positions_for(tape_id: int) -> List[float]:
            seen = set()
            positions = []
            for request in satisfiable.get(tape_id, ()):
                if request.block_id in seen:
                    continue
                seen.add(request.block_id)
                # A block has at most one copy per tape, so the first
                # cached replica on ``tape_id`` is the ``replica_on``
                # answer.
                for replica in replicas_cache[request.block_id]:
                    if replica.tape_id == tape_id:
                        positions.append(replica.position_mb)
                        break
            return positions

        selection = SelectionContext(
            timing=context.jukebox.timing,
            block_mb=block_mb,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            candidates=satisfiable,
            positions_for=positions_for,
            oldest=context.pending.oldest(),
        )
        tape_id = self._policy.select(selection)
        if tape_id is None:  # pragma: no cover - envelope covers all requests
            return None

        chosen = satisfiable[tape_id]
        context.pending.remove_many(chosen)
        entries = coalesce_entries(chosen, tape_id, context.catalog)
        self._active_envelope = dict(state.envelope)
        return MajorDecision(tape_id=tape_id, entries=entries)

    # ------------------------------------------------------------------
    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        service = context.service
        mounted = context.mounted_id
        if service is None or mounted is None:
            context.pending.append(request)
            return False
        block_mb = context.block_mb
        envelope = self._active_envelope

        # Satisfiable on the current tape within the upper envelope:
        # insert into the sweep as the dynamic incremental scheduler does.
        if context.catalog.has_replica_on(request.block_id, mounted):
            replica = context.catalog.replica_on(request.block_id, mounted)
            if replica.position_mb + block_mb <= envelope.get(mounted, 0.0):
                if self._insert_into_sweep(service, request, replica):
                    return True
                context.pending.append(request)
                return False

        # Otherwise apply steps 3-5 for this single request: find the
        # cheapest envelope extension covering it.
        best_tape: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        best_replica: Optional[Replica] = None
        rank = _rank_after(context.tape_count, mounted + 1)
        for replica in context.catalog.replicas_of(request.block_id):
            tape_envelope = envelope.get(replica.tape_id, 0.0)
            if replica.position_mb + block_mb <= tape_envelope:
                # Inside another tape's envelope: servicing it there needs
                # no extension, so prefer that tape outright when no
                # current-tape extension wins; treated as infinite
                # incremental bandwidth.
                key = (float("inf"), -rank[replica.tape_id])
            else:
                charge_switch = tape_envelope == 0.0 and replica.tape_id != mounted
                tracker = ExtensionCostTracker(
                    context.jukebox.timing, tape_envelope, block_mb, charge_switch
                )
                tracker.extend(replica.position_mb)
                key = (tracker.prefix_bandwidth(), -rank[replica.tape_id])
            if best_key is None or key > best_key:
                best_key = key
                best_tape = replica.tape_id
                best_replica = replica

        if best_tape == mounted and best_replica is not None:
            if self._insert_into_sweep(service, request, best_replica):
                self._active_envelope[mounted] = max(
                    self._active_envelope.get(mounted, 0.0),
                    best_replica.position_mb + block_mb,
                )
                return True
        context.pending.append(request)
        return False

    def _insert_into_sweep(self, service, request: Request, replica: Replica) -> bool:
        existing = service.find_block(request.block_id)
        if existing is not None:
            existing.attach(request)
            return True
        entry = ServiceEntry(
            position_mb=replica.position_mb,
            block_id=request.block_id,
            requests=[request],
        )
        return service.insert(entry)

    def on_sweep_complete(self, context: SchedulerContext) -> None:
        self._active_envelope = {}
