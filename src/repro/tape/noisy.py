"""Noisy drive timing: synthetic "hardware" that deviates from the model.

The paper validated its locate/read model against real hardware: over
ten random walks of 100 operations, total locate-time error was at most
0.6% (mean 0.5%) and read-time error at most 4.6% (mean 2.6%), with
read measurements showing "a significant variance".

Our simulator *is* the fitted model, so the equivalent validation needs
a synthetic stand-in for the measured drive: this wrapper perturbs each
operation's duration with bounded multiplicative noise.  Two uses:

* re-running the paper's random-walk validation — the deterministic
  model should predict a noisy drive's aggregate times with per-walk
  errors comparable to the paper's, because zero-mean per-operation
  noise averages out over a walk; and
* robustness experiments — schedulers make decisions with the *clean*
  cost model while the "hardware" misbehaves, mirroring reality, and
  the paper's conclusions should survive (see
  ``benchmarks/bench_robustness.py``).
"""

from __future__ import annotations

import random
from typing import Optional

from .timing import DriveTimingModel


class NoisyTimingModel:
    """Wraps a timing model, perturbing every duration it returns.

    Each duration is multiplied by ``1 + U(-amplitude, +amplitude)``
    drawn independently per operation; ``read_amplitude`` may be set
    higher than ``locate_amplitude`` (the paper observed much larger
    variance on reads).  The interface mirrors
    :class:`~repro.tape.timing.DriveTimingModel` so drives accept it
    directly.
    """

    def __init__(
        self,
        base: DriveTimingModel,
        rng: random.Random,
        locate_amplitude: float = 0.02,
        read_amplitude: float = 0.10,
        switch_amplitude: float = 0.02,
    ) -> None:
        for name, amplitude in (
            ("locate_amplitude", locate_amplitude),
            ("read_amplitude", read_amplitude),
            ("switch_amplitude", switch_amplitude),
        ):
            if not 0.0 <= amplitude < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {amplitude!r}")
        self.base = base
        self.rng = rng
        self.locate_amplitude = locate_amplitude
        self.read_amplitude = read_amplitude
        self.switch_amplitude = switch_amplitude

    def _jitter(self, seconds: float, amplitude: float) -> float:
        if seconds == 0.0 or amplitude == 0.0:
            return seconds
        return seconds * (1.0 + self.rng.uniform(-amplitude, amplitude))

    # -- perturbed operations -------------------------------------------
    def locate(self, from_mb: float, to_mb: float) -> float:
        """Perturbed point-to-point locate."""
        return self._jitter(self.base.locate(from_mb, to_mb), self.locate_amplitude)

    def locate_forward(self, distance_mb: float) -> float:
        """Perturbed forward locate (kept for cost-heuristic callers)."""
        return self._jitter(
            self.base.locate_forward(distance_mb), self.locate_amplitude
        )

    def locate_reverse(self, distance_mb: float, lands_on_bot: bool = False) -> float:
        """Perturbed reverse locate."""
        return self._jitter(
            self.base.locate_reverse(distance_mb, lands_on_bot=lands_on_bot),
            self.locate_amplitude,
        )

    def read(self, size_mb: float, startup: bool = True) -> float:
        """Perturbed read (the paper's high-variance measurement)."""
        return self._jitter(self.base.read(size_mb, startup=startup), self.read_amplitude)

    def rewind(self, from_mb: float) -> float:
        """Perturbed full rewind."""
        return self._jitter(self.base.rewind(from_mb), self.locate_amplitude)

    def switch(self) -> float:
        """Perturbed eject + swap + load."""
        return self._jitter(self.base.switch(), self.switch_amplitude)

    def switch_with_rewind(self, from_mb: float) -> float:
        """Perturbed full switch."""
        return self.rewind(from_mb) + self.switch()

    # -- pass-through constants used elsewhere ---------------------------
    @property
    def eject_s(self) -> float:
        """Nominal eject time (constants stay clean for bookkeeping)."""
        return self.base.eject_s

    @property
    def robot_swap_s(self) -> float:
        """Nominal robot swap time."""
        return self.base.robot_swap_s

    @property
    def load_s(self) -> float:
        """Nominal load time."""
        return self.base.load_s

    @property
    def read_s_per_mb(self) -> float:
        """Nominal streaming rate."""
        return self.base.read_s_per_mb


def random_walk_validation(
    base: DriveTimingModel,
    noisy: "NoisyTimingModel",
    walks: int = 10,
    steps: int = 100,
    extent_mb: float = 7 * 1024.0 - 1.0,
    block_mb: float = 1.0,
    seed: int = 0,
) -> list:
    """The paper's Section 2.1 validation: per-walk relative errors.

    For each random walk, accumulate the model-predicted and the noisy
    "measured" total of locate+read times over ``steps`` random
    targets; return the per-walk relative errors.
    """
    errors = []
    walk_rng = random.Random(seed)
    for _walk in range(walks):
        head = 0.0
        predicted = 0.0
        measured = 0.0
        for _step in range(steps):
            target = walk_rng.uniform(0.0, extent_mb)
            predicted += base.locate(head, target) + base.read(block_mb)
            measured += noisy.locate(head, target) + noisy.read(block_mb)
            head = target + block_mb
        errors.append(abs(predicted - measured) / measured)
    return errors
