"""Tape drive timing model (paper Section 2.1).

The paper measured an Exabyte EXB-8505XL helical-scan drive in an EXB-210
library and fitted piecewise-linear functions over 2130 random locates
with 1 MB logical blocks:

* forward locate past ``k`` blocks: ``4.834 + 0.378 k`` s for ``k <= 28``,
  else ``14.342 + 0.028 k`` s;
* reverse locate past ``k`` blocks: ``4.99 + 0.328 k`` s for ``k <= 28``,
  else ``13.74 + 0.0286 k`` s;
* locating to the physical beginning of tape adds 21 s;
* reading ``k`` MB after a forward locate: ``0.38 + 1.77 k`` s;
  after a reverse locate: ``1.77 k`` s;
* tape switch: 19 s eject + 20 s robot + 42 s load = 81 s.

All positions and distances in this module are measured in MB (the paper's
1 MB physical block unit).  Distances may be fractional.

The model is deliberately parameterized: the paper notes that changing the
constants to model a faster system "does not materially alter our results",
and :meth:`DriveTimingModel.scaled` supports exactly that sensitivity
experiment.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

#: Per-model memo dictionaries are cleared when they reach this many
#: entries, bounding memory on workloads with unbounded distinct
#: distances (the steady-state working set of a sweep is far smaller).
_MEMO_CAP = 65536


class Direction(enum.Enum):
    """Direction of the most recent tape head motion."""

    FORWARD = "forward"
    REVERSE = "reverse"


@dataclass(frozen=True)
class LinearSegment:
    """A linear cost function ``startup + rate * distance``."""

    startup: float
    rate: float

    def cost(self, distance: float) -> float:
        """Seconds to traverse ``distance`` MB under this segment."""
        return self.startup + self.rate * distance


@dataclass(frozen=True)
class DriveTimingModel:
    """Piecewise-linear timing model for a single-pass (helical-scan) drive.

    Attributes mirror the paper's fitted constants; see the module
    docstring for their provenance.
    """

    forward_short: LinearSegment = LinearSegment(4.834, 0.378)
    forward_long: LinearSegment = LinearSegment(14.342, 0.028)
    reverse_short: LinearSegment = LinearSegment(4.99, 0.328)
    reverse_long: LinearSegment = LinearSegment(13.74, 0.0286)
    #: Locate distance (MB) at or below which the short segment applies.
    short_threshold_mb: float = 28.0
    #: Extra seconds when a locate lands on the physical beginning of tape.
    bot_overhead_s: float = 21.0
    #: Startup seconds charged to a read that follows a forward locate.
    read_startup_after_forward_s: float = 0.38
    #: Streaming read rate: seconds per MB transferred.
    read_s_per_mb: float = 1.77
    eject_s: float = 19.0
    robot_swap_s: float = 20.0
    load_s: float = 42.0

    # ------------------------------------------------------------------
    # Cached segment tables and memoized costs (hot path)
    #
    # The piecewise tables (sorted breakpoints + matching segments, for
    # bisect) and the per-distance memo dicts are built lazily, once per
    # model instance, and stored with ``object.__setattr__`` — legal on
    # a frozen dataclass and invisible to ``__eq__``/``replace``/
    # ``asdict``, so ``scaled()`` copies start with fresh caches.  The
    # bisect lookup selects exactly the segment the original
    # ``distance <= threshold`` branch selected (``bisect_left`` puts a
    # distance equal to the breakpoint in the short segment), and the
    # cost arithmetic is the same ``startup + rate * distance``, so
    # every returned float is bit-identical to the scan it replaced.
    # ------------------------------------------------------------------
    def _tables(
        self,
    ) -> Tuple[
        List[float],
        Tuple["LinearSegment", ...],
        Tuple["LinearSegment", ...],
        Dict[float, float],
        Dict[float, float],
        Dict[float, float],
    ]:
        try:
            return self._cached_tables
        except AttributeError:
            tables = (
                [self.short_threshold_mb],
                (self.forward_short, self.forward_long),
                (self.reverse_short, self.reverse_long),
                {},  # forward-locate memo: distance -> seconds
                {},  # reverse-locate memo (not landing on BOT)
                {},  # reverse-locate memo (landing on BOT)
            )
            object.__setattr__(self, "_cached_tables", tables)
            return tables

    # ------------------------------------------------------------------
    # Locates
    # ------------------------------------------------------------------
    def locate_forward(self, distance_mb: float) -> float:
        """Seconds for a forward locate past ``distance_mb`` MB.

        A zero-distance "locate" models uninterrupted streaming onto a
        physically adjacent block and costs nothing.
        """
        if distance_mb < 0:
            raise ValueError(f"forward locate distance must be >= 0, got {distance_mb!r}")
        if distance_mb == 0:
            return 0.0
        breaks, forward, _reverse, memo, _rmemo, _bmemo = self._tables()
        seconds = memo.get(distance_mb)
        if seconds is None:
            segment = forward[bisect_left(breaks, distance_mb)]
            seconds = segment.startup + segment.rate * distance_mb
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[distance_mb] = seconds
        return seconds

    def locate_reverse(self, distance_mb: float, lands_on_bot: bool = False) -> float:
        """Seconds for a reverse locate past ``distance_mb`` MB.

        ``lands_on_bot`` adds the beginning-of-tape overhead the drive
        incurs whenever it fully rewinds.
        """
        if distance_mb < 0:
            raise ValueError(f"reverse locate distance must be >= 0, got {distance_mb!r}")
        if distance_mb == 0:
            return 0.0
        breaks, _forward, reverse, _fmemo, rmemo, bmemo = self._tables()
        memo = bmemo if lands_on_bot else rmemo
        seconds = memo.get(distance_mb)
        if seconds is None:
            segment = reverse[bisect_left(breaks, distance_mb)]
            seconds = segment.startup + segment.rate * distance_mb
            if lands_on_bot:
                seconds += self.bot_overhead_s
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[distance_mb] = seconds
        return seconds

    def locate(self, from_mb: float, to_mb: float) -> float:
        """Seconds to move the head from ``from_mb`` to ``to_mb``."""
        if to_mb >= from_mb:
            return self.locate_forward(to_mb - from_mb)
        return self.locate_reverse(from_mb - to_mb, lands_on_bot=(to_mb == 0))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, size_mb: float, startup: bool = True) -> float:
        """Seconds to transfer ``size_mb`` MB once the block is located.

        ``startup`` is True for reads that follow a forward locate, which
        pay a fixed re-synchronization cost (the paper's measurement);
        reads after a reverse locate, and streaming reads that continue
        directly from the previous block, do not.
        """
        if size_mb < 0:
            raise ValueError(f"read size must be >= 0, got {size_mb!r}")
        seconds = self.read_s_per_mb * size_mb
        if startup:
            seconds += self.read_startup_after_forward_s
        return seconds

    # ------------------------------------------------------------------
    # Rewind / switch
    # ------------------------------------------------------------------
    def rewind(self, from_mb: float) -> float:
        """Seconds to fully rewind from head position ``from_mb``."""
        if from_mb < 0:
            raise ValueError(f"head position must be >= 0, got {from_mb!r}")
        if from_mb == 0:
            return 0.0
        return self.locate_reverse(from_mb, lands_on_bot=True)

    def switch(self) -> float:
        """Seconds for eject + robot swap + load (excluding rewind)."""
        return self.eject_s + self.robot_swap_s + self.load_s

    def switch_with_rewind(self, from_mb: float) -> float:
        """Seconds for a full tape switch starting at head position ``from_mb``."""
        return self.rewind(from_mb) + self.switch()

    # ------------------------------------------------------------------
    # Derived constants used by the Theorem 2 bound (Section 3.3)
    # ------------------------------------------------------------------
    @property
    def short_forward_startup_s(self) -> float:
        """``C_s`` in Theorem 2: startup cost of a short forward locate."""
        return self.forward_short.startup

    @property
    def long_short_startup_gap_s(self) -> float:
        """``C_d`` in Theorem 2: long minus short forward startup."""
        return self.forward_long.startup - self.forward_short.startup

    def block_transfer_s(self, block_mb: float) -> float:
        """``C_r`` in Theorem 2: transfer time for one data block."""
        return self.read_s_per_mb * block_mb

    # ------------------------------------------------------------------
    def scaled(self, speedup: float) -> "DriveTimingModel":
        """A model in which every time cost is divided by ``speedup``.

        Used for the paper's sensitivity claim that a faster drive does
        not change the qualitative conclusions.
        """
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup!r}")
        scale = 1.0 / speedup

        def seg(segment: LinearSegment) -> LinearSegment:
            return LinearSegment(segment.startup * scale, segment.rate * scale)

        return replace(
            self,
            forward_short=seg(self.forward_short),
            forward_long=seg(self.forward_long),
            reverse_short=seg(self.reverse_short),
            reverse_long=seg(self.reverse_long),
            bot_overhead_s=self.bot_overhead_s * scale,
            read_startup_after_forward_s=self.read_startup_after_forward_s * scale,
            read_s_per_mb=self.read_s_per_mb * scale,
            eject_s=self.eject_s * scale,
            robot_swap_s=self.robot_swap_s * scale,
            load_s=self.load_s * scale,
        )


#: The paper's measured Exabyte EXB-8505XL / EXB-210 model.
EXB_8505XL = DriveTimingModel()
