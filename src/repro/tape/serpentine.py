"""Serpentine tape timing model (extension beyond the paper).

The paper's algorithms assume single-pass helical-scan tape and note
that they "would need to be modified for serpentine tapes such as
Travan, Quantum DLT, and IBM 3950".  This module supplies the missing
substrate for exploring that claim: a serpentine geometry/timing model
that plugs into the same drive, jukebox, and scheduler machinery.

Geometry: the tape is divided into ``wraps`` longitudinal passes of
``wrap_mb`` MB each, written boustrophedon (even wraps run forward,
odd wraps run backward).  A logical position ``p`` therefore maps to a
longitudinal coordinate

    x(p) = offset          if (p // wrap_mb) is even
    x(p) = wrap_mb - offset  otherwise,   offset = p mod wrap_mb

and locating is dominated by the *longitudinal* distance ``|x2 - x1|``
(a fast skip) plus a small head-step cost when the wrap changes —
nothing like the helical model's long linear traversals.  Two further
differences matter to the paper's conclusions: there is no
rewind-before-eject penalty (``rewind`` is free), and positioning cost
is nearly independent of logical distance, which compresses the
placement effects Sections 4.3/4.5 rely on.

The exact position-based cost is what the drive executes
(:meth:`locate`); the distance-only methods (:meth:`locate_forward`,
:meth:`locate_reverse`) used by the schedulers' cost heuristics are
*expectations* over wrap phase, which is exactly the approximation a
scheduler for serpentine tape would have to make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Memo dictionaries are cleared at this size to bound memory.
_MEMO_CAP = 65536


@dataclass(frozen=True)
class SerpentineTimingModel:
    """A DLT-style serpentine drive, interface-compatible with
    :class:`~repro.tape.timing.DriveTimingModel` consumers."""

    wraps: int = 64
    wrap_mb: float = 112.0  # 64 x 112 MB = 7 GB, matching the EXB tapes
    locate_startup_s: float = 3.0
    longitudinal_s_per_mb: float = 0.06
    wrap_step_s: float = 1.0
    #: Same streaming rate as the helical model, isolating geometry effects.
    read_s_per_mb: float = 1.77
    read_startup_s: float = 0.38
    eject_s: float = 19.0
    robot_swap_s: float = 20.0
    load_s: float = 42.0

    @property
    def capacity_mb(self) -> float:
        """Total logical extent of a tape under this geometry."""
        return self.wraps * self.wrap_mb

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def wrap_of(self, position_mb: float) -> int:
        """Index of the wrap containing ``position_mb``."""
        if position_mb < 0:
            raise ValueError(f"position must be >= 0, got {position_mb!r}")
        return min(int(position_mb // self.wrap_mb), self.wraps - 1)

    def longitudinal(self, position_mb: float) -> float:
        """Longitudinal coordinate x(p) in ``[0, wrap_mb]``."""
        wrap = self.wrap_of(position_mb)
        offset = position_mb - wrap * self.wrap_mb
        if wrap % 2 == 0:
            return offset
        return self.wrap_mb - offset

    # ------------------------------------------------------------------
    # Lazily-built memo tables (hot path).  Stored via
    # ``object.__setattr__`` on the frozen dataclass so they are
    # per-instance, invisible to ``__eq__``/``replace``, and fresh on
    # ``scaled()`` copies.  Values are computed by exactly the original
    # arithmetic, so memo hits are bit-identical to recomputation.
    # ------------------------------------------------------------------
    def _memos(self) -> Tuple[Dict[Tuple[float, float], float], Dict[float, float]]:
        try:
            return self._cached_memos
        except AttributeError:
            memos = (
                {},  # exact locate: (from_mb, to_mb) -> seconds
                {},  # expected locate: distance_mb -> seconds
            )
            object.__setattr__(self, "_cached_memos", memos)
            return memos

    # ------------------------------------------------------------------
    # Exact costs (used by the drive)
    # ------------------------------------------------------------------
    def locate(self, from_mb: float, to_mb: float) -> float:
        """Seconds to move the head between two logical positions."""
        if from_mb == to_mb:
            return 0.0
        pair_memo, _distance_memo = self._memos()
        key = (from_mb, to_mb)
        seconds = pair_memo.get(key)
        if seconds is None:
            longitudinal_delta = abs(
                self.longitudinal(to_mb) - self.longitudinal(from_mb)
            )
            wrap_delta = abs(self.wrap_of(to_mb) - self.wrap_of(from_mb))
            seconds = (
                self.locate_startup_s
                + self.longitudinal_s_per_mb * longitudinal_delta
                + (self.wrap_step_s if wrap_delta else 0.0)
            )
            if len(pair_memo) >= _MEMO_CAP:
                pair_memo.clear()
            pair_memo[key] = seconds
        return seconds

    def read(self, size_mb: float, startup: bool = True) -> float:
        """Seconds to stream ``size_mb`` MB (turnarounds amortized in rate)."""
        if size_mb < 0:
            raise ValueError(f"read size must be >= 0, got {size_mb!r}")
        seconds = self.read_s_per_mb * size_mb
        if startup:
            seconds += self.read_startup_s
        return seconds

    def rewind(self, from_mb: float) -> float:
        """Serpentine drives eject from anywhere: rewind is free."""
        if from_mb < 0:
            raise ValueError(f"head position must be >= 0, got {from_mb!r}")
        return 0.0

    def switch(self) -> float:
        """Eject + robot swap + load."""
        return self.eject_s + self.robot_swap_s + self.load_s

    def switch_with_rewind(self, from_mb: float) -> float:
        """Full switch; identical to :meth:`switch` (no rewind cost)."""
        return self.rewind(from_mb) + self.switch()

    # ------------------------------------------------------------------
    # Distance-only expectations (used by scheduler cost heuristics)
    # ------------------------------------------------------------------
    def _expected_longitudinal(self, distance_mb: float) -> float:
        """E|x(p+d) - x(p)| over uniform wrap phase p.

        For d beyond one wrap the coordinates decorrelate and the
        expected gap of two uniform points applies (wrap_mb / 3); below
        one wrap it interpolates linearly between d and that asymptote.
        """
        if distance_mb >= self.wrap_mb:
            return self.wrap_mb / 3.0
        asymptote = self.wrap_mb / 3.0
        blend = distance_mb / self.wrap_mb
        return distance_mb * (1.0 - blend) + asymptote * blend

    def locate_forward(self, distance_mb: float) -> float:
        """Expected locate cost for a forward logical distance."""
        if distance_mb < 0:
            raise ValueError(f"distance must be >= 0, got {distance_mb!r}")
        if distance_mb == 0:
            return 0.0
        _pair_memo, distance_memo = self._memos()
        seconds = distance_memo.get(distance_mb)
        if seconds is None:
            wrap_cost = self.wrap_step_s if distance_mb > self.wrap_mb / 2 else 0.0
            seconds = (
                self.locate_startup_s
                + self.longitudinal_s_per_mb * self._expected_longitudinal(distance_mb)
                + wrap_cost
            )
            if len(distance_memo) >= _MEMO_CAP:
                distance_memo.clear()
            distance_memo[distance_mb] = seconds
        return seconds

    def locate_reverse(self, distance_mb: float, lands_on_bot: bool = False) -> float:
        """Expected reverse locate; symmetric, and no beginning-of-tape
        overhead exists for serpentine drives."""
        return self.locate_forward(distance_mb)


    # ------------------------------------------------------------------
    def scaled(self, speedup: float) -> "SerpentineTimingModel":
        """A model with every time cost divided by ``speedup``."""
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup!r}")
        scale = 1.0 / speedup
        from dataclasses import replace

        return replace(
            self,
            locate_startup_s=self.locate_startup_s * scale,
            longitudinal_s_per_mb=self.longitudinal_s_per_mb * scale,
            wrap_step_s=self.wrap_step_s * scale,
            read_s_per_mb=self.read_s_per_mb * scale,
            read_startup_s=self.read_startup_s * scale,
            eject_s=self.eject_s * scale,
            robot_swap_s=self.robot_swap_s * scale,
            load_s=self.load_s * scale,
        )


#: A representative serpentine drive matching the EXB tapes' capacity.
DLT_STYLE = SerpentineTimingModel()
