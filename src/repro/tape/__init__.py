"""Tape hardware substrate: timing model, drive, robot, and jukebox."""

from .drive import DriveCounters, DriveStateError, TapeDrive
from .jukebox import DEFAULT_TAPE_COUNT, Jukebox
from .robot import RobotArm, RobotError
from .noisy import NoisyTimingModel, random_walk_validation
from .serpentine import DLT_STYLE, SerpentineTimingModel
from .tape import DEFAULT_TAPE_CAPACITY_MB, Tape, TapePool
from .timing import Direction, DriveTimingModel, EXB_8505XL, LinearSegment

__all__ = [
    "DEFAULT_TAPE_CAPACITY_MB",
    "DEFAULT_TAPE_COUNT",
    "DLT_STYLE",
    "Direction",
    "SerpentineTimingModel",
    "DriveCounters",
    "DriveStateError",
    "DriveTimingModel",
    "EXB_8505XL",
    "Jukebox",
    "LinearSegment",
    "NoisyTimingModel",
    "RobotArm",
    "RobotError",
    "Tape",
    "TapeDrive",
    "TapePool",
    "random_walk_validation",
]
