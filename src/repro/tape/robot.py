"""The jukebox robot arm: moves tapes between slots and the drive."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from .timing import DriveTimingModel


class RobotError(RuntimeError):
    """Raised on impossible robot operations (e.g. fetching a loaded tape)."""


@dataclass
class RobotArm:
    """Tracks which tapes sit in slots versus in the drive.

    The swap itself is a single timed motion (the paper measured 20 s for
    the EXB-210's arm to exchange cartridges).
    """

    timing: DriveTimingModel
    slot_count: int
    in_slots: Set[int] = field(default_factory=set)
    in_drive: Optional[int] = None
    swaps: int = 0

    def __post_init__(self) -> None:
        if not self.in_slots and self.in_drive is None:
            self.in_slots = set(range(self.slot_count))

    def swap(self, load_tape_id: int) -> float:
        """Exchange the drive's tape (if any) with ``load_tape_id``.

        Returns the arm motion duration.  The drive must already have
        ejected its cartridge; this models only the robot's part.
        """
        if load_tape_id not in self.in_slots:
            raise RobotError(f"tape {load_tape_id} is not in any slot")
        if self.in_drive is not None:
            self.in_slots.add(self.in_drive)
        self.in_slots.remove(load_tape_id)
        self.in_drive = load_tape_id
        self.swaps += 1
        return self.timing.robot_swap_s

    def return_to_slot(self) -> None:
        """Put the drive's cartridge back in its slot, untimed.

        Fault-recovery path: the repair technician, not the arm, moves
        the cartridge, so no arm motion is charged.  No-op when the
        drive is empty.
        """
        if self.in_drive is not None:
            self.in_slots.add(self.in_drive)
            self.in_drive = None
