"""Tape drive state machine.

The drive is a passive model: each operation validates state, updates the
head position / mounted tape, and returns the operation's duration in
seconds.  The simulation layer (:mod:`repro.service.simulator`) turns the
durations into simulated time by yielding timeouts, so the same drive
model also serves the analytic cost calculations in
:mod:`repro.core.cost` without any simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .tape import Tape
from .timing import Direction, DriveTimingModel, EXB_8505XL


class DriveStateError(RuntimeError):
    """Raised on physically impossible drive operations."""


@dataclass
class DriveCounters:
    """Cumulative operation-time breakdown for utilization reporting."""

    locate_s: float = 0.0
    read_s: float = 0.0
    rewind_s: float = 0.0
    eject_load_s: float = 0.0
    locates: int = 0
    reads: int = 0
    rewinds: int = 0
    loads: int = 0

    @property
    def busy_s(self) -> float:
        """Total seconds the drive spent on any operation."""
        return self.locate_s + self.read_s + self.rewind_s + self.eject_load_s


@dataclass
class TapeDrive:
    """A single tape drive with at most one mounted tape."""

    timing: DriveTimingModel = field(default_factory=lambda: EXB_8505XL)
    mounted: Optional[Tape] = None
    head_mb: float = 0.0
    last_motion: Direction = Direction.FORWARD
    #: True when the next read pays the forward-locate startup cost.
    read_startup_pending: bool = True
    counters: DriveCounters = field(default_factory=DriveCounters)

    @property
    def is_loaded(self) -> bool:
        """True when a tape is in the drive."""
        return self.mounted is not None

    @property
    def mounted_id(self) -> Optional[int]:
        """The mounted tape's id, or ``None`` when empty."""
        return self.mounted.tape_id if self.mounted else None

    def _require_loaded(self) -> Tape:
        if self.mounted is None:
            raise DriveStateError("operation requires a mounted tape")
        return self.mounted

    # ------------------------------------------------------------------
    # Head motion and transfer
    # ------------------------------------------------------------------
    def locate(self, target_mb: float) -> float:
        """Move the head to ``target_mb``; return the locate duration."""
        tape = self._require_loaded()
        tape.validate_extent(target_mb, 0.0)
        seconds = self.timing.locate(self.head_mb, target_mb)
        if target_mb > self.head_mb:
            self.last_motion = Direction.FORWARD
            self.read_startup_pending = True
        elif target_mb < self.head_mb:
            self.last_motion = Direction.REVERSE
            self.read_startup_pending = False
        # Zero-distance locate changes nothing: streaming continues
        # without repositioning, so no startup is re-incurred.
        self.head_mb = target_mb
        self.counters.locate_s += seconds
        if seconds > 0:
            self.counters.locates += 1
        return seconds

    def read(self, size_mb: float) -> float:
        """Read ``size_mb`` MB at the head; return the transfer duration.

        The read startup penalty applies when the block was reached by a
        forward locate (per the paper's measurements); reads after a
        reverse locate or streaming straight from the previous block skip
        it.  The head advances past the data read.
        """
        tape = self._require_loaded()
        tape.validate_extent(self.head_mb, size_mb)
        seconds = self.timing.read(size_mb, startup=self.read_startup_pending)
        self.head_mb += size_mb
        self.last_motion = Direction.FORWARD
        self.read_startup_pending = False
        self.counters.read_s += seconds
        self.counters.reads += 1
        return seconds

    def access(self, position_mb: float, size_mb: float) -> float:
        """Locate to ``position_mb`` then read ``size_mb``; return total time."""
        return self.locate(position_mb) + self.read(size_mb)

    # ------------------------------------------------------------------
    # Mount management
    # ------------------------------------------------------------------
    def rewind(self) -> float:
        """Fully rewind the mounted tape; return the duration."""
        self._require_loaded()
        seconds = self.timing.rewind(self.head_mb)
        self.head_mb = 0.0
        self.last_motion = Direction.REVERSE
        self.read_startup_pending = False
        self.counters.rewind_s += seconds
        if seconds > 0:
            self.counters.rewinds += 1
        return seconds

    def eject(self) -> float:
        """Eject the mounted tape (must be rewound); return the duration."""
        self._require_loaded()
        if self.head_mb != 0.0:
            raise DriveStateError(
                f"tape must be rewound before eject (head at {self.head_mb} MB)"
            )
        self.mounted = None
        seconds = self.timing.eject_s
        self.counters.eject_load_s += seconds
        return seconds

    def force_unload(self) -> None:
        """Drop the mounted tape without rewinding and without timing.

        Fault-recovery path: a failed drive's cartridge is pulled by the
        repair technician, so the drive comes back empty with no rewind/
        eject durations charged to the simulation.  A no-op when empty.
        """
        self.mounted = None
        self.head_mb = 0.0
        self.last_motion = Direction.FORWARD
        self.read_startup_pending = True

    def load(self, tape: Tape) -> float:
        """Load ``tape`` into the empty drive; return the duration."""
        if self.mounted is not None:
            raise DriveStateError(
                f"drive already holds tape {self.mounted.tape_id}; eject first"
            )
        self.mounted = tape
        self.head_mb = 0.0
        self.last_motion = Direction.FORWARD
        self.read_startup_pending = True
        seconds = self.timing.load_s
        self.counters.eject_load_s += seconds
        self.counters.loads += 1
        return seconds
