"""The jukebox: one drive, a robot arm, and a pool of tapes.

This composes :class:`~repro.tape.drive.TapeDrive`,
:class:`~repro.tape.robot.RobotArm`, and
:class:`~repro.tape.tape.TapePool` into the single-drive jukebox the
paper studies (an Exabyte EXB-210: 10 tapes x 7 GB).  Operations return
durations; the service model turns them into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .drive import TapeDrive
from .robot import RobotArm
from .tape import DEFAULT_TAPE_CAPACITY_MB, TapePool
from .timing import DriveTimingModel, EXB_8505XL

#: Number of tapes in the paper's default jukebox.
DEFAULT_TAPE_COUNT = 10


@dataclass
class Jukebox:
    """A single-drive tape jukebox."""

    pool: TapePool
    drive: TapeDrive
    robot: RobotArm
    switches: int = 0

    @classmethod
    def build(
        cls,
        tape_count: int = DEFAULT_TAPE_COUNT,
        capacity_mb: float = DEFAULT_TAPE_CAPACITY_MB,
        timing: DriveTimingModel = EXB_8505XL,
    ) -> "Jukebox":
        """Construct a jukebox with ``tape_count`` identical tapes."""
        pool = TapePool.uniform(tape_count, capacity_mb)
        drive = TapeDrive(timing=timing)
        robot = RobotArm(timing=timing, slot_count=tape_count)
        return cls(pool=pool, drive=drive, robot=robot)

    @property
    def timing(self) -> DriveTimingModel:
        """The drive timing model in effect."""
        return self.drive.timing

    @property
    def tape_count(self) -> int:
        """Number of tapes resident in the jukebox."""
        return len(self.pool)

    @property
    def mounted_id(self) -> Optional[int]:
        """Currently mounted tape id, or ``None``."""
        return self.drive.mounted_id

    @property
    def head_mb(self) -> float:
        """Current head position on the mounted tape (MB)."""
        return self.drive.head_mb

    # ------------------------------------------------------------------
    def switch_to(self, tape_id: int) -> float:
        """Mount ``tape_id``; return total duration (0 if already mounted).

        A switch is rewind + eject + robot swap + load; the initial mount
        of an empty drive skips the rewind/eject.
        """
        if tape_id < 0 or tape_id >= len(self.pool):
            raise ValueError(f"no tape {tape_id} in a {len(self.pool)}-tape jukebox")
        if self.drive.mounted_id == tape_id:
            return 0.0
        seconds = 0.0
        if self.drive.is_loaded:
            seconds += self.drive.rewind()
            seconds += self.drive.eject()
        seconds += self.robot.swap(tape_id)
        seconds += self.drive.load(self.pool[tape_id])
        self.switches += 1
        return seconds

    def access(self, position_mb: float, size_mb: float) -> float:
        """Locate + read on the mounted tape; return the duration."""
        return self.drive.access(position_mb, size_mb)

    def unload_for_repair(self) -> None:
        """Pull the mounted cartridge during a drive repair (untimed).

        The drive comes back empty and the cartridge returns to its
        slot, keeping drive and robot state consistent for the next
        :meth:`switch_to`.
        """
        self.drive.force_unload()
        self.robot.return_to_slot()
