"""Tape geometry: capacity, block positions, and bounds checking.

Positions are measured in MB from the physical beginning of tape, matching
the paper's 1 MB physical-block unit.  A data block of ``size_mb`` placed
at position ``p`` occupies ``[p, p + size_mb)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default tape capacity used throughout the paper (EXB-210 tapes, 7 GB).
DEFAULT_TAPE_CAPACITY_MB = 7 * 1024


@dataclass(frozen=True)
class Tape:
    """A single tape cartridge: an identifier plus linear geometry."""

    tape_id: int
    capacity_mb: float = DEFAULT_TAPE_CAPACITY_MB

    def __post_init__(self) -> None:
        if self.tape_id < 0:
            raise ValueError(f"tape_id must be >= 0, got {self.tape_id!r}")
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {self.capacity_mb!r}")

    def contains(self, position_mb: float, size_mb: float = 0.0) -> bool:
        """True if a block of ``size_mb`` at ``position_mb`` fits on tape."""
        return 0 <= position_mb and position_mb + size_mb <= self.capacity_mb

    def validate_extent(self, position_mb: float, size_mb: float) -> None:
        """Raise ``ValueError`` unless the extent lies within the tape."""
        if not self.contains(position_mb, size_mb):
            raise ValueError(
                f"extent [{position_mb}, {position_mb + size_mb}) MB outside "
                f"tape {self.tape_id} of capacity {self.capacity_mb} MB"
            )

    def slots(self, block_mb: float) -> int:
        """Number of whole blocks of ``block_mb`` that fit on this tape."""
        if block_mb <= 0:
            raise ValueError(f"block_mb must be positive, got {block_mb!r}")
        return int(self.capacity_mb // block_mb)


@dataclass
class TapePool:
    """The fixed collection of tapes resident in one jukebox."""

    tapes: list = field(default_factory=list)

    @classmethod
    def uniform(cls, count: int, capacity_mb: float = DEFAULT_TAPE_CAPACITY_MB) -> "TapePool":
        """A pool of ``count`` identical tapes with ids ``0..count-1``."""
        if count <= 0:
            raise ValueError(f"tape count must be positive, got {count!r}")
        return cls(tapes=[Tape(tape_id, capacity_mb) for tape_id in range(count)])

    def __len__(self) -> int:
        return len(self.tapes)

    def __iter__(self):
        return iter(self.tapes)

    def __getitem__(self, tape_id: int) -> Tape:
        return self.tapes[tape_id]

    @property
    def tape_ids(self) -> range:
        """Tape identifiers in jukebox (slot) order."""
        return range(len(self.tapes))

    def jukebox_order(self, start_after: int) -> list:
        """Tape ids in circular jukebox order starting after ``start_after``.

        Jukebox order is the paper's arbitrary circular ordering on slots;
        ties in tape-selection policies are broken by preferring the first
        tape in this order after the currently mounted tape.
        """
        count = len(self.tapes)
        if count == 0:
            return []
        start = (start_after + 1) % count
        return [(start + offset) % count for offset in range(count)]
