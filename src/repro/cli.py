"""Command-line interface: regenerate paper figures or run one experiment.

Examples::

    tape-jukebox figure 6 --horizon 200000 --jobs 8 --cache-dir ~/.cache/tj
    tape-jukebox sweep --scheduler fifo --jobs 4 --progress
    tape-jukebox run --scheduler envelope-max-bandwidth --replicas 9 \\
        --layout vertical --start-position 1.0 --queue 60
    tape-jukebox federate --libraries 2 --drives 1,2 --speedups 1,2 \\
        --policy predicted-service --sweep-replicas 0,1
    tape-jukebox list

The ``sweep``, ``figure``, ``run``, and ``federate`` subcommands share
one campaign parser fragment: ``--jobs N`` fans simulations out over N
worker processes, ``--cache-dir`` enables the content-addressed result
cache (default: ``$REPRO_CACHE_DIR`` when set), ``--no-cache`` disables
it, and ``--progress`` prints one line per finished point to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .api import run
from .core.registry import scheduler_names
from .experiments.config import ExperimentConfig
from .experiments.figures import FIGURES
from .layout.placement import Layout
from .report.text import format_figure


def _campaign_parent() -> argparse.ArgumentParser:
    """The shared ``--jobs/--cache-dir/--no-cache/--progress`` fragment."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("campaign execution")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the campaign (default: 1, serial)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory "
        "(default: $REPRO_CACHE_DIR when set, else caching off)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even when a directory is configured",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="print one line per finished campaign point to stderr",
    )
    group.add_argument(
        "--point-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per executed point (s); a point that "
        "exceeds it becomes an error record instead of hanging the batch",
    )
    group.add_argument(
        "--journal", default=None, metavar="FILE",
        help="durable campaign journal (JSONL); default: "
        "<cache-dir>/campaign-journal.jsonl when a cache dir is in effect",
    )
    group.add_argument(
        "--no-journal", action="store_true",
        help="disable the campaign journal even when a cache dir is set",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="resume from the journal: skip points it marked done "
        "(served from the cache) and requeue the ones left in flight",
    )
    group.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per point for transient failures (killed or "
        "stalled workers, wall-clock timeouts; default: 3)",
    )
    group.add_argument(
        "--abort-after", type=int, default=None, metavar="N",
        help="stop the campaign after N consecutive point failures "
        "instead of grinding through a doomed grid",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="profile with cProfile: `run` prints the top cumulative "
        "functions; campaign points dump per-point .prof files",
    )
    group.add_argument(
        "--profile-dir", default="profiles", metavar="DIR",
        help="directory for per-point .prof dumps (default: ./profiles)",
    )
    group.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="capture a structured trace per executed point (cache hits "
        "excluded): <digest>.trace.json (Chrome/Perfetto) + "
        "<digest>.summary.json",
    )
    return parent


def _campaign_from_args(args: argparse.Namespace):
    """Build the :class:`~repro.campaign.Campaign` the subcommand uses."""
    from .campaign import Campaign, ProgressPrinter

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if args.no_cache:
        cache_dir = None
    journal = None
    if not args.no_journal:
        if args.journal:
            journal = args.journal
        elif cache_dir:
            journal = os.path.join(cache_dir, "campaign-journal.jsonl")
    if args.resume and journal is None:
        raise SystemExit(
            "--resume needs a journal: pass --journal FILE or a cache dir "
            "(--cache-dir / $REPRO_CACHE_DIR), and drop --no-journal"
        )
    return Campaign(
        jobs=args.jobs,
        cache_dir=cache_dir,
        progress=ProgressPrinter() if args.progress else None,
        point_timeout_s=args.point_timeout,
        journal_path=journal,
        resume=args.resume,
        max_attempts=args.max_attempts,
        abort_after=args.abort_after,
        profile_dir=args.profile_dir if args.profile else None,
        trace_dir=args.trace_dir,
    )


def _print_campaign_stats(campaign) -> None:
    """Summarize the campaign's last submission on stderr (``--progress``)."""
    stats = getattr(campaign, "last_stats", None)
    if stats is None:
        return
    print(
        f"campaign: {stats.unique} unique of {stats.submitted} submitted | "
        f"{stats.cache_hits} cache hits | {stats.executed} executed | "
        f"{stats.retried} retried | {stats.failures} failures | "
        f"{stats.duration_s:.2f}s wall",
        file=sys.stderr,
    )


def _campaign_epilogue(campaign, args, error=None) -> int:
    """Shared exit path for campaign commands: stats, failures, code.

    A campaign that finished with failed points exits nonzero with a
    one-line summary (and the journal path when there is one) instead
    of passing silently to the shell.
    """
    if args.progress:
        _print_campaign_stats(campaign)
    stats = campaign.last_stats
    failures = stats.failures if stats is not None else 0
    if error is not None and failures == 0:
        failures = 1
    if failures == 0:
        return 0
    total = stats.unique if stats is not None else failures
    aborted = (
        " (aborted by the consecutive-failure breaker)"
        if stats is not None and stats.aborted
        else ""
    )
    journal = (
        f"; journal: {campaign.journal_path}" if campaign.journal_path else ""
    )
    print(
        f"campaign failed: {failures} of {total} point(s) did not "
        f"complete{aborted}{journal}",
        file=sys.stderr,
    )
    return 1


def _interrupted_exit(campaign) -> int:
    """Exit path after Ctrl-C: print the resume hint, return 130."""
    if campaign.journal_path:
        print(
            "interrupted; rerun the same command with --resume to continue "
            f"(journal: {campaign.journal_path})",
            file=sys.stderr,
        )
    else:
        print(
            "interrupted; rerun with --cache-dir or --journal to make "
            "campaigns resumable",
            file=sys.stderr,
        )
    return 130


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheduler", default="dynamic-max-bandwidth")
    parser.add_argument("--layout", choices=("horizontal", "vertical"), default="horizontal")
    parser.add_argument("--percent-hot", type=float, default=10.0)
    parser.add_argument("--percent-requests-hot", type=float, default=40.0)
    parser.add_argument("--replicas", type=int, default=0)
    parser.add_argument("--start-position", type=float, default=0.0)
    parser.add_argument("--block-mb", type=float, default=16.0)
    parser.add_argument("--tapes", type=int, default=10)
    parser.add_argument("--queue", type=int, default=None, help="closed-queueing length")
    parser.add_argument(
        "--interarrival", type=float, default=None, help="open-queueing mean (s)"
    )
    parser.add_argument("--horizon", type=float, default=400_000.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--technology", choices=("helical", "serpentine"), default="helical"
    )


def _config_from_args(args: argparse.Namespace, queue=None) -> ExperimentConfig:
    if queue is None:
        queue = args.queue
    interarrival = getattr(args, "interarrival", None)
    if queue is None and interarrival is None:
        queue = 60
    return ExperimentConfig(
        scheduler=args.scheduler,
        layout=Layout(args.layout),
        percent_hot=args.percent_hot,
        percent_requests_hot=args.percent_requests_hot,
        replicas=args.replicas,
        start_position=args.start_position,
        block_mb=args.block_mb,
        tape_count=args.tapes,
        queue_length=queue,
        mean_interarrival_s=interarrival,
        horizon_s=args.horizon,
        seed=args.seed,
        drive_technology=args.technology,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="tape-jukebox",
        description="Tape jukebox scheduling & replication simulator "
        "(Hillyer/Rastogi/Silberschatz, ICDE 1999 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    campaign_parent = _campaign_parent()

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper figure", parents=[campaign_parent]
    )
    figure_parser.add_argument("figure_id", choices=sorted(FIGURES))
    figure_parser.add_argument("--horizon", type=float, default=None)
    figure_parser.add_argument(
        "--format", choices=("text", "csv", "markdown"), default="text"
    )
    figure_parser.add_argument(
        "--plot", action="store_true", help="append an ASCII throughput/delay plot"
    )

    gap_parser = subparsers.add_parser(
        "gap",
        help="measure each heuristic's optimality gap vs the exact baseline",
        parents=[campaign_parent],
    )
    gap_parser.add_argument(
        "--horizon", type=float, default=None, metavar="S",
        help="simulated seconds per scenario (default: 200000)",
    )
    gap_parser.add_argument(
        "--queues", default="20,60,100", metavar="N,N,...",
        help="closed-queue lengths for the queue-sweep scenarios",
    )
    gap_parser.add_argument(
        "--schedulers", default=None, metavar="NAME,...",
        help="schedulers to measure (default: the paper's four families; "
        "'all' adds the LTSP approximation policies)",
    )
    gap_parser.add_argument(
        "--baseline", default=None, metavar="NAME",
        help="baseline scheduler ratios are measured against "
        "(default: exact-batch)",
    )
    gap_parser.add_argument(
        "--scenarios", default=None, metavar="KEY,...",
        help="restrict to these scenario keys (default: the full matrix)",
    )
    gap_parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of a table",
    )

    run_parser = subparsers.add_parser(
        "run", help="run a single experiment", parents=[campaign_parent]
    )
    _add_run_arguments(run_parser)
    run_parser.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="N",
        help="print the first N drive operations after the run",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="trace one parametric curve over queue lengths",
        parents=[campaign_parent],
    )
    _add_run_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--queues",
        default="20,40,60,80,100,120,140",
        help="comma-separated closed-queueing lengths",
    )

    federate_parser = subparsers.add_parser(
        "federate",
        help="simulate a multi-library federation behind a global scheduler",
        parents=[campaign_parent],
    )
    federate_parser.add_argument(
        "--libraries", type=int, default=2, metavar="N",
        help="number of libraries in the fleet (default: 2)",
    )
    federate_parser.add_argument(
        "--drives", default="1", metavar="N,N,...",
        help="drives per library: one value for all, or one per library",
    )
    federate_parser.add_argument(
        "--tapes", default="10", metavar="N,N,...",
        help="tapes per library: one value for all, or one per library",
    )
    federate_parser.add_argument(
        "--speedups", default="1.0", metavar="X,X,...",
        help="drive speedups per library: one value for all, or one per library",
    )
    federate_parser.add_argument(
        "--technologies", default="helical", metavar="T,T,...",
        help="drive technology (helical|serpentine) per library",
    )
    federate_parser.add_argument(
        "--policy", default="round-robin",
        help="global routing policy (see `tape-jukebox list`)",
    )
    federate_parser.add_argument(
        "--placement", choices=("home", "spread"), default="spread",
        help="where each hot block's extra copies live: inside its home "
        "library or spread over other libraries (default: spread)",
    )
    federate_parser.add_argument(
        "--fleet-replicas", type=int, default=0, metavar="NR",
        help="extra copies of each hot block at fleet level (default: 0)",
    )
    federate_parser.add_argument("--scheduler", default="dynamic-max-bandwidth")
    federate_parser.add_argument("--percent-hot", type=float, default=10.0)
    federate_parser.add_argument(
        "--percent-requests-hot", type=float, default=40.0
    )
    federate_parser.add_argument("--block-mb", type=float, default=16.0)
    federate_parser.add_argument(
        "--queue", type=int, default=60, help="fleet-wide closed population"
    )
    federate_parser.add_argument("--horizon", type=float, default=400_000.0)
    federate_parser.add_argument("--seed", type=int, default=42)
    federate_parser.add_argument(
        "--routing-samples", type=int, default=4096, metavar="N",
        help="requests the routing phase draws to estimate per-library load",
    )
    federate_parser.add_argument(
        "--sweep-replicas", default=None, metavar="NR,NR,...",
        help="run one federation point per replication degree and tabulate",
    )

    lifecycle_parser = subparsers.add_parser(
        "lifecycle", help="plan layouts for the Section 4.8 filling lifecycle"
    )
    lifecycle_parser.add_argument("--tapes", type=int, default=10)
    lifecycle_parser.add_argument("--capacity-mb", type=float, default=7 * 1024.0)
    lifecycle_parser.add_argument("--percent-hot", type=float, default=10.0)
    lifecycle_parser.add_argument(
        "--fills", default="0.3,0.5,0.7,0.9,1.0",
        help="comma-separated fill fractions",
    )

    chaos_parser = subparsers.add_parser(
        "chaos", help="run an experiment under fault injection"
    )
    _add_run_arguments(chaos_parser)
    chaos_parser.add_argument(
        "--media-error-rate", type=float, default=0.01,
        help="per-read transient soft-error probability",
    )
    chaos_parser.add_argument(
        "--bad-replica-rate", type=float, default=0.0,
        help="probability a stored copy sits in a permanently bad region",
    )
    chaos_parser.add_argument(
        "--robot-pick-error-rate", type=float, default=0.0,
        help="per-pick robot failure probability",
    )
    chaos_parser.add_argument(
        "--drive-mtbf", type=float, default=None,
        help="mean time between drive failures (s); unset = no failures",
    )
    chaos_parser.add_argument(
        "--drive-mttr", type=float, default=3600.0,
        help="mean drive repair time (s)",
    )
    chaos_parser.add_argument(
        "--fault-seed", type=int, default=7, help="seed for the fault streams"
    )
    chaos_parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="read attempts before a transient fault escalates",
    )
    chaos_parser.add_argument(
        "--base-backoff", type=float, default=2.0,
        help="first retry backoff (s); doubles per retry",
    )
    chaos_parser.add_argument(
        "--compare-replicas", default=None, metavar="NR,NR,...",
        help="rerun at each replication degree and tabulate availability",
    )

    qos_parser = subparsers.add_parser(
        "qos", help="run an experiment under overload control and report SLOs"
    )
    _add_run_arguments(qos_parser)
    qos_parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request TTL (s); requests not delivered in time expire",
    )
    qos_parser.add_argument(
        "--admission", choices=("unbounded", "bounded-queue", "token-bucket"),
        default="unbounded", help="admission policy at the pending-list boundary",
    )
    qos_parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="bounded-queue policy: shed arrivals beyond N pending requests",
    )
    qos_parser.add_argument(
        "--rate-limit", type=float, default=None, metavar="R",
        help="token-bucket policy: sustained admission rate (requests/s)",
    )
    qos_parser.add_argument(
        "--burst", type=int, default=1,
        help="token-bucket policy: bucket depth (default: 1)",
    )
    qos_parser.add_argument(
        "--starvation-age", type=float, default=None, metavar="S",
        help="force-promote requests older than S seconds into the next sweep",
    )
    qos_parser.add_argument(
        "--watchdog-stall", type=float, default=None, metavar="S",
        help="trip the circuit breaker after S seconds without a completed "
        "sweep while requests are pending",
    )
    qos_parser.add_argument(
        "--storm-faults", type=int, default=None, metavar="N",
        help="trip the circuit breaker after N faults with no intervening "
        "completed sweep",
    )
    qos_parser.add_argument(
        "--resume-pending", type=int, default=None, metavar="N",
        help="close a tripped breaker once the pending list drains to N",
    )
    qos_parser.add_argument(
        "--csv", action="store_true",
        help="emit the SLO accounting as one CSV row instead of a table",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="run one experiment with structured tracing and export the trace",
    )
    _add_run_arguments(trace_parser)
    trace_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON file (open at ui.perfetto.dev)",
    )
    trace_parser.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="write the full structured trace as JSON Lines",
    )
    trace_parser.add_argument(
        "--summary-json", default=None, metavar="FILE",
        help="write the aggregated trace summary as JSON (trace_diff input)",
    )
    trace_parser.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="cap per-request async spans in the Chrome export to N requests",
    )
    trace_parser.add_argument(
        "--media-error-rate", type=float, default=0.0,
        help="per-read transient soft-error probability (adds fault spans)",
    )
    trace_parser.add_argument(
        "--bad-replica-rate", type=float, default=0.0,
        help="probability a stored copy sits in a permanently bad region",
    )
    trace_parser.add_argument(
        "--fault-seed", type=int, default=7, help="seed for the fault streams"
    )
    trace_parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request TTL (s); expired requests show up as an outcome",
    )
    trace_parser.add_argument(
        "--starvation-age", type=float, default=None, metavar="S",
        help="force-promote requests older than S seconds (forced decisions)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clean the content-addressed result cache"
    )
    cache_parser.add_argument(
        "action", choices=("clean", "stats"),
        help="clean: remove orphaned temp files left by crashed writers "
        "and list quarantined (*.corrupt) entries; stats: entry counts",
    )
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )

    subparsers.add_parser(
        "list", help="list available schedulers and global routing policies"
    )

    args = parser.parse_args(argv)

    if args.command == "cache":
        from .campaign import ResultCache

        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
        if not cache_dir:
            raise SystemExit(
                "cache: provide --cache-dir or set $REPRO_CACHE_DIR"
            )
        cache = ResultCache(cache_dir, sweep_orphans=False)
        corrupt = cache.corrupt_entries()
        if args.action == "clean":
            removed = cache.clean()
            print(
                f"removed {removed} orphaned temp file(s) under {cache.root}"
            )
        else:
            print(f"{len(cache)} cached result(s) under {cache.root}")
        if corrupt:
            print(f"{len(corrupt)} quarantined corrupt entrie(s):")
            for path in corrupt:
                print(f"  {path}")
        return 0

    if args.command == "list":
        # Both scheduler families come from the same registry pattern:
        # local schedulers from repro.core.registry, global routing
        # policies from repro.federation.registry.
        from .federation.registry import global_policy_names

        print("local schedulers:")
        for name in scheduler_names():
            print(f"  {name}")
        print("global policies:")
        for name in global_policy_names():
            print(f"  {name}")
        return 0

    if args.command == "figure":
        from .campaign import CampaignPointError

        campaign = _campaign_from_args(args)
        generator = FIGURES[args.figure_id]
        try:
            if args.figure_id == "10a" or args.horizon is None:
                data = generator(campaign=campaign)
            else:
                data = generator(horizon_s=args.horizon, campaign=campaign)
        except KeyboardInterrupt:
            return _interrupted_exit(campaign)
        except CampaignPointError as error:
            print(f"error: {error}", file=sys.stderr)
            return _campaign_epilogue(campaign, args, error=error) or 1
        if args.format == "csv":
            from .report.export import figure_to_csv

            print(figure_to_csv(data), end="")
        elif args.format == "markdown":
            from .report.export import figure_to_markdown

            print(figure_to_markdown(data))
        else:
            print(format_figure(data))
        if args.plot:
            from .report.plot import plot_throughput_delay

            print(plot_throughput_delay(data))
        return _campaign_epilogue(campaign, args)

    if args.command == "gap":
        from .analysis.gap import (
            APPROX_POLICIES,
            DEFAULT_BASELINE,
            GAP_HORIZON_S,
            PAPER_HEURISTICS,
            compute_gap,
            gap_scenarios,
        )
        from .campaign import CampaignPointError
        from .report.text import format_gap_report

        campaign = _campaign_from_args(args)
        horizon_s = args.horizon if args.horizon is not None else GAP_HORIZON_S
        queue_lengths = [int(piece) for piece in args.queues.split(",") if piece]
        scenarios = list(gap_scenarios(horizon_s, queue_lengths))
        if args.scenarios:
            wanted = [piece for piece in args.scenarios.split(",") if piece]
            known = {scenario.key: scenario for scenario in scenarios}
            unknown = [key for key in wanted if key not in known]
            if unknown:
                raise SystemExit(
                    f"gap: unknown scenario(s) {', '.join(unknown)}; "
                    f"known: {', '.join(known)}"
                )
            scenarios = [known[key] for key in wanted]
        if args.schedulers is None:
            schedulers = None
        elif args.schedulers == "all":
            schedulers = PAPER_HEURISTICS + APPROX_POLICIES
        else:
            schedulers = tuple(
                piece for piece in args.schedulers.split(",") if piece
            )
        baseline = args.baseline or DEFAULT_BASELINE
        try:
            report = compute_gap(
                scenarios=scenarios,
                schedulers=schedulers,
                baseline=baseline,
                campaign=campaign,
            )
        except KeyboardInterrupt:
            return _interrupted_exit(campaign)
        except CampaignPointError as error:
            print(f"error: {error}", file=sys.stderr)
            return _campaign_epilogue(campaign, args, error=error) or 1
        if args.json:
            import json

            payload = {
                "baseline": report.baseline,
                "horizon_s": horizon_s,
                "rows": [
                    {
                        "scenario": row.scenario.key,
                        "description": row.scenario.description,
                        "baseline_mean_s": row.baseline_mean_s,
                        "ratios": {
                            cell.scheduler: cell.ratio for cell in row.cells
                        },
                    }
                    for row in report.rows
                ],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_gap_report(report))
        return _campaign_epilogue(campaign, args)

    if args.command == "lifecycle":
        from .layout.lifecycle import LifecyclePlanner
        from .report.text import format_table

        planner = LifecyclePlanner(
            tape_count=args.tapes,
            capacity_mb=args.capacity_mb,
            percent_hot=args.percent_hot,
        )
        fills = [float(piece) for piece in args.fills.split(",") if piece]
        rows = []
        for plan in planner.schedule(fills):
            rows.append(
                (
                    f"{plan.base_utilization:.0%}",
                    plan.stage.value,
                    plan.spec.layout.value,
                    plan.replicas,
                    f"SP-{plan.spec.start_position:g}",
                )
            )
        print(
            format_table(("fill", "stage", "layout", "replicas", "hot_run"), rows)
        )
        return 0

    if args.command == "sweep":
        from .campaign import CampaignPointError
        from .experiments.sweeps import queue_sweep
        from .report.text import format_parametric_series

        campaign = _campaign_from_args(args)
        queue_lengths = [int(piece) for piece in args.queues.split(",") if piece]
        base = _config_from_args(args, queue=queue_lengths[0])
        try:
            points = queue_sweep(base, queue_lengths, campaign=campaign)
        except KeyboardInterrupt:
            return _interrupted_exit(campaign)
        except CampaignPointError as error:
            print(f"error: {error}", file=sys.stderr)
            return _campaign_epilogue(campaign, args, error=error) or 1
        print(format_parametric_series(args.scheduler, points))
        return _campaign_epilogue(campaign, args)

    if args.command == "federate":
        from .campaign import CampaignPointError
        from .federation import FederationConfig, LibraryConfig
        from .report.text import format_table

        def _per_library(raw: str, cast, flag: str) -> list:
            values = [cast(piece) for piece in raw.split(",") if piece]
            if len(values) == 1:
                return values * args.libraries
            if len(values) != args.libraries:
                raise SystemExit(
                    f"{flag} needs 1 or {args.libraries} values, "
                    f"got {len(values)}"
                )
            return values

        drives = _per_library(args.drives, int, "--drives")
        tapes = _per_library(args.tapes, int, "--tapes")
        speedups = _per_library(args.speedups, float, "--speedups")
        technologies = _per_library(args.technologies, str, "--technologies")
        libraries = tuple(
            LibraryConfig(
                tape_count=tapes[index],
                drive_count=drives[index],
                drive_speedup=speedups[index],
                drive_technology=technologies[index],
            )
            for index in range(args.libraries)
        )
        base = FederationConfig(
            libraries=libraries,
            global_policy=args.policy,
            placement=args.placement,
            fleet_replicas=args.fleet_replicas,
            scheduler=args.scheduler,
            percent_hot=args.percent_hot,
            percent_requests_hot=args.percent_requests_hot,
            block_mb=args.block_mb,
            queue_length=args.queue,
            horizon_s=args.horizon,
            seed=args.seed,
            routing_samples=args.routing_samples,
        )
        if args.sweep_replicas:
            degrees = [
                int(piece) for piece in args.sweep_replicas.split(",") if piece
            ]
            configs = [base.with_(fleet_replicas=degree) for degree in degrees]
        else:
            configs = [base]
        campaign = _campaign_from_args(args)
        try:
            submission = campaign.submit(configs)
            rows = []
            for config in configs:
                report = submission.require(config).report
                rows.append(
                    (
                        f"NR-{config.fleet_replicas}/{config.placement}",
                        f"{report.aggregate_throughput_kb_s:.1f}",
                        f"{report.aggregate_requests_per_min:.3f}",
                        f"{report.mean_response_s:.1f}",
                        "/".join(str(count) for count in report.routed_requests),
                    )
                )
        except KeyboardInterrupt:
            return _interrupted_exit(campaign)
        except CampaignPointError as error:
            print(f"error: {error}", file=sys.stderr)
            return _campaign_epilogue(campaign, args, error=error) or 1
        print(base.describe())
        print(
            format_table(
                ("point", "kb_s", "req_min", "mean_resp_s", "routed"), rows
            )
        )
        return _campaign_epilogue(campaign, args)

    if args.command == "chaos":
        from .faults.config import FaultConfig
        from .faults.retry import RetryPolicy
        from .report.text import format_table

        fault_config = FaultConfig(
            media_error_rate=args.media_error_rate,
            bad_replica_rate=args.bad_replica_rate,
            robot_pick_error_rate=args.robot_pick_error_rate,
            drive_mtbf_s=args.drive_mtbf,
            drive_mttr_s=args.drive_mttr,
            seed=args.fault_seed,
            retry=RetryPolicy(
                max_attempts=args.max_attempts, base_backoff_s=args.base_backoff
            ),
        )
        base = _config_from_args(args).with_(faults=fault_config)
        if args.compare_replicas:
            degrees = [
                int(piece) for piece in args.compare_replicas.split(",") if piece
            ]
            rows = []
            for replicas in degrees:
                report = run(base.with_(replicas=replicas)).report
                rows.append(
                    (
                        f"NR-{replicas}",
                        report.completed,
                        report.failed_requests,
                        f"{report.served_fraction:.4f}",
                        report.failovers,
                        report.retries,
                        f"{report.mean_response_s:.1f}",
                    )
                )
            print(
                format_table(
                    (
                        "replicas", "completed", "failed", "served_frac",
                        "failovers", "retries", "mean_resp_s",
                    ),
                    rows,
                )
            )
            return 0
        result = run(base)
        print(result.config.describe())
        print(result.report)
        report = result.report
        fault_rows = [
            (kind, count) for kind, count in sorted(report.fault_counts.items())
        ]
        fault_rows.append(("retries", report.retries))
        fault_rows.append(("failovers", report.failovers))
        fault_rows.append(("failed requests", report.failed_requests))
        print(format_table(("fault", "count"), fault_rows))
        print(f"served fraction: {report.served_fraction:.4f}")
        if report.drive_failures:
            print(
                f"drive failures: {report.drive_failures} "
                f"(mean repair {report.mean_repair_s:.0f} s)"
            )
        return 0

    if args.command == "qos":
        from .qos.config import QoSConfig
        from .report.text import format_slo_report

        qos_config = QoSConfig(
            deadline_s=args.deadline,
            admission=args.admission,
            max_pending=args.max_pending,
            rate_limit_per_s=args.rate_limit,
            burst=args.burst,
            starvation_age_s=args.starvation_age,
            watchdog_stall_s=args.watchdog_stall,
            storm_fault_threshold=args.storm_faults,
            resume_pending=args.resume_pending,
        )
        result = run(_config_from_args(args).with_(qos=qos_config))
        if args.csv:
            from .report.export import slo_to_csv

            print(slo_to_csv([result]), end="")
            return 0
        print(result.config.describe())
        print(result.report)
        print(format_slo_report(result.report))
        return 0

    if args.command == "trace":
        import json

        from .obs import (
            Tracer,
            TraceSummary,
            write_chrome_trace,
            write_jsonl,
        )
        from .report.text import format_trace_summary

        config = _config_from_args(args)
        if args.media_error_rate > 0.0 or args.bad_replica_rate > 0.0:
            from .faults.config import FaultConfig

            config = config.with_(
                faults=FaultConfig(
                    media_error_rate=args.media_error_rate,
                    bad_replica_rate=args.bad_replica_rate,
                    seed=args.fault_seed,
                )
            )
        if args.deadline is not None or args.starvation_age is not None:
            from .qos.config import QoSConfig

            config = config.with_(
                qos=QoSConfig(
                    deadline_s=args.deadline,
                    starvation_age_s=args.starvation_age,
                )
            )
        obs = Tracer()
        result = run(config, obs=obs)
        print(result.config.describe())
        print(result.report)
        summary = TraceSummary.from_tracer(obs, warmup_s=config.warmup_s)
        print(format_trace_summary(summary))
        if args.out:
            payload = write_chrome_trace(
                obs, args.out, max_requests=args.max_requests
            )
            print(
                f"chrome trace written to {args.out} "
                f"({len(payload['traceEvents'])} events); "
                "open it at https://ui.perfetto.dev",
                file=sys.stderr,
            )
        if args.jsonl:
            count = write_jsonl(obs, args.jsonl)
            print(
                f"jsonl trace written to {args.jsonl} ({count} records)",
                file=sys.stderr,
            )
        if args.summary_json:
            with open(args.summary_json, "w", encoding="utf-8") as handle:
                json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"summary written to {args.summary_json}", file=sys.stderr)
        return 0

    config = _config_from_args(args)
    if args.trace > 0:
        from .experiments.runner import build_simulator
        from .service.oplog import OperationLog

        simulator = build_simulator(config)
        if not hasattr(simulator, "oplog"):
            raise SystemExit("--trace is only supported for single-drive runs")
        log = OperationLog(capacity=args.trace)
        simulator.oplog = log
        report = simulator.run(config.horizon_s)
        print(config.describe())
        print(report)
        print(log.format(limit=args.trace))
        return 0

    if args.profile:
        import cProfile
        import pstats

        from .campaign.hashing import config_digest

        profiler = cProfile.Profile()
        result = profiler.runcall(run, config)
        print(result.config.describe())
        print(result.report)
        os.makedirs(args.profile_dir, exist_ok=True)
        prof_path = os.path.join(
            args.profile_dir, f"{config_digest(config)[:16]}.prof"
        )
        profiler.dump_stats(prof_path)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"profile written to {prof_path}", file=sys.stderr)
        return 0

    from .campaign import CampaignPointError

    campaign = _campaign_from_args(args)
    try:
        result = campaign.submit([config]).require(config)
    except KeyboardInterrupt:
        return _interrupted_exit(campaign)
    except CampaignPointError as error:
        print(f"error: {error}", file=sys.stderr)
        return _campaign_epilogue(campaign, args, error=error) or 1
    print(result.config.describe())
    print(result.report)
    return _campaign_epilogue(campaign, args)


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
