"""The unified run surface: one ``run(config)`` for every run kind.

Historically each tier had its own entry point (``run_experiment``,
``run_farm``, and federation would have added a third).  This facade
makes the config type the dispatcher:

* :class:`~repro.experiments.config.ExperimentConfig` →
  :class:`~repro.experiments.runner.ExperimentResult`
* :class:`~repro.service.farm.FarmConfig` →
  :class:`~repro.service.farm.FarmResult`
* :class:`~repro.federation.config.FederationConfig` →
  :class:`~repro.federation.runner.FederationResult`

Every result carries ``.config`` and ``.report``, so campaigns, the
cache, the journal, and the CLI treat the three kinds uniformly.
``run`` is a plain module-level function (picklable), and it accepts
the ``obs`` keyword, so it drops into the campaign engine as the
default runner — including worker processes and ``trace_dir`` capture.

The old entry points remain as deprecation shims that route through
here; see docs/API.md for the old → new mapping.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Set, Union

from .experiments.config import ExperimentConfig
from .experiments.runner import ExperimentResult, _run_experiment
from .federation.config import FederationConfig
from .federation.runner import FederationResult, run_federation
from .service.farm import FarmConfig, FarmResult, _run_farm

__all__ = ["run"]

#: Config types ``run`` dispatches on.
RunConfig = Union[ExperimentConfig, FarmConfig, FederationConfig]
#: Result types ``run`` returns.
RunResult = Union[ExperimentResult, FarmResult, FederationResult]

#: Deprecated entry points that already warned this process (each shim
#: emits one DeprecationWarning per process, not one per call).
_DEPRECATIONS_EMITTED: Set[str] = set()


def _warn_deprecated(old: str, new: str) -> None:
    """Emit the one-per-process DeprecationWarning for a legacy shim."""
    if old in _DEPRECATIONS_EMITTED:
        return
    _DEPRECATIONS_EMITTED.add(old)
    warnings.warn(
        f"{old}() is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run(
    config: RunConfig,
    obs=None,
    tracer_factory: Optional[Callable[[int], object]] = None,
) -> RunResult:
    """Run ``config`` and return its typed result.

    ``obs`` optionally attaches a :class:`~repro.obs.Tracer`: to the
    single run of an experiment, or to library/jukebox 0 of a farm or
    federation (the campaign engine's uniform ``trace_dir`` hook).
    ``tracer_factory(index)`` traces every member of a farm or
    federation instead and is rejected for plain experiments.
    """
    if isinstance(config, ExperimentConfig):
        if tracer_factory is not None:
            raise TypeError(
                "tracer_factory applies to farm/federation configs; pass "
                "obs= to trace a single experiment"
            )
        return _run_experiment(config, obs=obs)
    if isinstance(config, FarmConfig):
        if tracer_factory is None and obs is not None:
            tracer_factory = lambda index: obs if index == 0 else None
        report = _run_farm(
            config.base,
            config.jukebox_count,
            config.total_queue_length,
            tracer_factory=tracer_factory,
        )
        return FarmResult(config=config, report=report)
    if isinstance(config, FederationConfig):
        return run_federation(config, obs=obs, tracer_factory=tracer_factory)
    raise TypeError(
        f"run() accepts ExperimentConfig, FarmConfig, or FederationConfig; "
        f"got {type(config).__name__}"
    )
