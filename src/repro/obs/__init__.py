"""Structured tracing and observability for the jukebox simulators.

``repro.obs`` answers *where did the time go?* for a simulated run.
Attach a :class:`Tracer` to a simulator (``obs=`` on the constructors
and on :func:`repro.experiments.runner.run_experiment`) and every
admitted request accumulates a chain of typed phase spans from arrival
to its terminal outcome, every drive gets an activity timeline, every
major reschedule lands in a decision log, and fault/QoS events are
recorded as instantaneous structured events.

The layer is strictly pay-for-what-you-use: with ``obs=None`` (the
default) no tracing code runs and results are bit-identical to an
untraced build — the golden-hash tests pin this.

Exports: JSONL (:func:`write_jsonl`) and Chrome trace-event JSON
(:func:`write_chrome_trace`, loadable in Perfetto); aggregates:
:class:`TraceSummary`.  See ``docs/OBSERVABILITY.md``.
"""

from .export import (
    JSONL_SCHEMA,
    parse_jsonl,
    to_chrome_trace,
    trace_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .registry import MetricRegistry
from .spans import (
    OUTCOMES,
    PHASES,
    DecisionRecord,
    DriveSpan,
    RequestTrace,
    TraceEvent,
)
from .summary import SUMMARY_SCHEMA, TraceSummary
from .tracer import Tracer

__all__ = [
    "DecisionRecord",
    "DriveSpan",
    "JSONL_SCHEMA",
    "MetricRegistry",
    "OUTCOMES",
    "PHASES",
    "RequestTrace",
    "SUMMARY_SCHEMA",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "parse_jsonl",
    "to_chrome_trace",
    "trace_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
