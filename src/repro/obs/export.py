"""Trace exporters: JSONL and Chrome trace-event JSON.

Two formats, one source of truth (the :class:`~repro.obs.tracer.Tracer`):

* **JSONL** — one self-describing JSON object per line, suitable for
  ``jq``/pandas post-processing and for lossless round-trips
  (:func:`trace_to_jsonl` / :func:`parse_jsonl`).  The first line is a
  ``meta`` record carrying :data:`JSONL_SCHEMA`.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing`` (:func:`to_chrome_trace`).  Drive activity
  becomes complete ("X") slices on one thread per drive, request phase
  spans become async ("b"/"e") slices keyed by request id, and faults /
  sheds / decisions become instant ("i") events.  Simulated seconds map
  to trace microseconds.

:func:`validate_chrome_trace` is the schema gate both the tests and the
CLI run before a file is written.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

from .tracer import Tracer

#: Version tag of the JSONL record layout.
JSONL_SCHEMA = "repro-trace/1"

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def trace_to_jsonl(tracer: Tracer) -> Iterator[str]:
    """Serialize ``tracer`` as one JSON object per line.

    Record order is deterministic: meta, request traces (id order),
    drive spans, decisions, events (each in record order), counters.
    """
    yield json.dumps(
        {
            "type": "meta",
            "schema": JSONL_SCHEMA,
            "requests": len(tracer.requests),
            "drive_spans": len(tracer.drive_spans),
            "events": len(tracer.events),
            "decisions": len(tracer.decisions),
            "dropped_drive_spans": tracer.dropped_drive_spans,
            "dropped_events": tracer.dropped_events,
        },
        sort_keys=True,
    )
    for _rid, trace in sorted(tracer.requests.items()):
        yield json.dumps(
            {
                "type": "request",
                "request_id": trace.request_id,
                "block_id": trace.block_id,
                "arrival_s": trace.arrival_s,
                "end_s": trace.end_s,
                "outcome": trace.outcome,
                "phases": dict(sorted(trace.phases.items())),
                "spans": [list(span) for span in trace.spans],
            },
            sort_keys=True,
        )
    for span in tracer.drive_spans:
        record = {
            "type": "op",
            "drive": span.drive,
            "kind": span.kind,
            "start_s": span.start_s,
            "duration_s": span.duration_s,
        }
        for key in ("tape_id", "block_id", "position_mb", "detail"):
            value = getattr(span, key)
            if value is not None:
                record[key] = value
        yield json.dumps(record, sort_keys=True)
    for decision in tracer.decisions:
        yield json.dumps(
            {
                "type": "decision",
                "time_s": decision.time_s,
                "drive": decision.drive,
                "scheduler": decision.scheduler,
                "tape_id": decision.tape_id,
                "entry_count": decision.entry_count,
                "request_count": decision.request_count,
                "pending_len": decision.pending_len,
                "forced": decision.forced,
            },
            sort_keys=True,
        )
    for event in tracer.events:
        yield json.dumps(
            {
                "type": "event",
                "time_s": event.time_s,
                "kind": event.kind,
                "drive": event.drive,
                "attrs": event.attr_dict(),
            },
            sort_keys=True,
        )
    yield json.dumps(
        {"type": "counters", **tracer.metrics.snapshot()}, sort_keys=True
    )


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the JSONL export to ``path``; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_to_jsonl(tracer):
            handle.write(line + "\n")
            count += 1
    return count


def parse_jsonl(lines) -> Dict[str, List[dict]]:
    """Parse a JSONL export back into records grouped by type.

    Raises ``ValueError`` on an unknown schema or a record missing its
    required keys — the round-trip contract the exporter tests pin.
    """
    grouped: Dict[str, List[dict]] = {
        "meta": [],
        "request": [],
        "op": [],
        "decision": [],
        "event": [],
        "counters": [],
    }
    required = {
        "meta": ("schema",),
        "request": ("request_id", "block_id", "arrival_s", "phases", "spans"),
        "op": ("drive", "kind", "start_s", "duration_s"),
        "decision": ("time_s", "drive", "scheduler", "tape_id", "pending_len"),
        "event": ("time_s", "kind"),
        "counters": ("counters", "gauges"),
    }
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind not in grouped:
            raise ValueError(f"line {number}: unknown record type {kind!r}")
        missing = [key for key in required[kind] if key not in record]
        if missing:
            raise ValueError(f"line {number}: {kind} record missing {missing}")
        grouped[kind].append(record)
    if not grouped["meta"]:
        raise ValueError("no meta record (not a repro trace JSONL file?)")
    schema = grouped["meta"][0]["schema"]
    if schema != JSONL_SCHEMA:
        raise ValueError(f"unsupported schema {schema!r} (expected {JSONL_SCHEMA!r})")
    return grouped


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
#: pid of the hardware timeline (one tid per drive).
PID_DRIVES = 1
#: pid of the request timeline (async slices keyed by request id).
PID_REQUESTS = 2


def to_chrome_trace(
    tracer: Tracer, max_requests: Optional[int] = None
) -> dict:
    """Render ``tracer`` in Chrome trace-event format.

    ``max_requests`` caps how many request traces are exported as async
    slices (lowest request ids first); drive activity, decisions, and
    events are always complete.  Load the resulting file in Perfetto or
    ``chrome://tracing``.
    """
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID_DRIVES,
            "tid": 0,
            "args": {"name": "jukebox drives"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID_REQUESTS,
            "tid": 0,
            "args": {"name": "requests"},
        },
    ]
    for track in tracer.timeline.tracks():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID_DRIVES,
                "tid": track,
                "args": {"name": f"drive {track}"},
            }
        )
    for span in tracer.drive_spans:
        args = {}
        for key in ("tape_id", "block_id", "position_mb", "detail"):
            value = getattr(span, key)
            if value is not None:
                args[key] = value
        events.append(
            {
                "ph": "X",
                "name": span.kind,
                "cat": "drive",
                "pid": PID_DRIVES,
                "tid": span.drive,
                "ts": span.start_s * _US,
                "dur": span.duration_s * _US,
                "args": args,
            }
        )
    for decision in tracer.decisions:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": "decision" + (":forced" if decision.forced else ""),
                "cat": "scheduler",
                "pid": PID_DRIVES,
                "tid": decision.drive,
                "ts": decision.time_s * _US,
                "args": {
                    "scheduler": decision.scheduler,
                    "tape_id": decision.tape_id,
                    "entries": decision.entry_count,
                    "requests": decision.request_count,
                    "pending": decision.pending_len,
                },
            }
        )
    for event in tracer.events:
        events.append(
            {
                "ph": "i",
                "s": "t" if event.drive is not None else "g",
                "name": event.kind,
                "cat": "event",
                "pid": PID_DRIVES,
                "tid": event.drive if event.drive is not None else 0,
                "ts": event.time_s * _US,
                "args": event.attr_dict(),
            }
        )
    exported = 0
    for _rid, trace in sorted(tracer.requests.items()):
        if max_requests is not None and exported >= max_requests:
            break
        exported += 1
        for phase, start_s, end_s in trace.spans:
            base = {
                "cat": "request",
                "id": trace.request_id,
                "pid": PID_REQUESTS,
                "tid": 0,
                "name": phase,
                "args": {
                    "request_id": trace.request_id,
                    "block_id": trace.block_id,
                    "outcome": trace.outcome,
                },
            }
            events.append({**base, "ph": "b", "ts": start_s * _US})
            events.append({**base, "ph": "e", "ts": end_s * _US})
    return {
        "displayTimeUnit": "ms",
        "otherData": {"schema": JSONL_SCHEMA, "exported_requests": exported},
        "traceEvents": events,
    }


def validate_chrome_trace(payload: dict) -> Dict[str, int]:
    """Validate a Chrome trace-event payload; returns counts by phase.

    Raises ``ValueError`` on any malformed event — the schema test (and
    the CLI, before writing a file) runs every export through this.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload is not a trace-event container")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counts: Dict[str, int] = {}
    open_async: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "b", "e", "M"):
            raise ValueError(f"event {index}: unknown phase {phase!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index}: missing {key!r}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {index}: bad ts {ts!r}")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(f"event {index}: bad dur {duration!r}")
        if phase in ("b", "e"):
            if "id" not in event:
                raise ValueError(f"event {index}: async event missing id")
            key = (event["pid"], event.get("cat"), event["id"], event["name"])
            if phase == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ValueError(f"event {index}: 'e' without matching 'b'")
                open_async[key] -= 1
        counts[phase] = counts.get(phase, 0) + 1
    unbalanced = {key: n for key, n in open_async.items() if n}
    if unbalanced:
        raise ValueError(f"unbalanced async slices: {len(unbalanced)}")
    return counts


def write_chrome_trace(
    tracer: Tracer, path: str, max_requests: Optional[int] = None
) -> dict:
    """Validate and write the Chrome trace to ``path``; returns payload."""
    payload = to_chrome_trace(tracer, max_requests=max_requests)
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload
