"""Span model: typed intervals in one request's life and on one drive.

The observability layer (see ``docs/OBSERVABILITY.md``) records two
kinds of timelines:

* **Request traces** — each admitted request accumulates a contiguous
  chain of *phase spans* from arrival to its terminal event.  The phase
  taxonomy is :data:`PHASES`; spans chain timestamp-to-timestamp, so by
  construction the phase durations of a request sum exactly to its
  response time (the conservation property the tests pin).
* **Drive spans** — what each drive was physically doing (switch, read,
  idle, backoff, repair), the utilization timeline TALICS³-style
  component reports are built from.

Both are plain data: the :class:`~repro.obs.tracer.Tracer` owns the
recording discipline, :mod:`repro.obs.export` owns the serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Ordered phase taxonomy of one request's life.  ``queue`` is time on
#: the pending list before a major reschedule selects the request;
#: ``exchange`` is the tape switch its sweep paid; ``sweep-wait`` is
#: time inside a sweep waiting for earlier reads; ``locate``/``read``
#: split the delivering physical access; ``recovery`` is time spent in
#: fault handling (failed reads, retries, backoff, failover requeues).
PHASES: Tuple[str, ...] = (
    "queue",
    "exchange",
    "sweep-wait",
    "locate",
    "read",
    "recovery",
)

#: Terminal outcomes a request trace may end in (exactly one each).
OUTCOMES: Tuple[str, ...] = ("complete", "shed", "expired", "failed")


@dataclass(frozen=True)
class DriveSpan:
    """One interval of drive (or robot) activity."""

    drive: int
    kind: str
    start_s: float
    duration_s: float
    tape_id: Optional[int] = None
    block_id: Optional[int] = None
    position_mb: Optional[float] = None
    detail: Optional[str] = None

    @property
    def end_s(self) -> float:
        """Completion time of the span."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous structured event (fault, failover, shed, ...)."""

    time_s: float
    kind: str
    drive: Optional[int] = None
    attrs: Tuple[Tuple[str, object], ...] = ()

    def attr_dict(self) -> Dict[str, object]:
        """The event attributes as a plain dict."""
        return dict(self.attrs)


@dataclass(frozen=True)
class DecisionRecord:
    """One major-reschedule outcome (the scheduler-decision log)."""

    time_s: float
    drive: int
    scheduler: str
    tape_id: int
    entry_count: int
    request_count: int
    pending_len: int
    #: True when the starvation guard bypassed the wrapped scheduler.
    forced: bool = False


@dataclass
class RequestTrace:
    """The accumulated life of one request.

    Phase accounting uses a single moving ``mark``: every
    :meth:`advance` attributes the interval since the mark to one phase
    and moves the mark forward, so the spans tile ``[arrival_s,
    end_s]`` with no gaps or overlaps.
    """

    request_id: int
    block_id: int
    arrival_s: float
    end_s: Optional[float] = None
    outcome: Optional[str] = None
    phases: Dict[str, float] = field(default_factory=dict)
    #: Contiguous (phase, start_s, end_s) chain, in time order.
    spans: List[Tuple[str, float, float]] = field(default_factory=list)
    #: True after a major reschedule selected this request (reset by a
    #: failover/requeue, which sends it back to the pending list).
    scheduled: bool = False
    #: True once a fault interrupted this request's current attempt.
    in_recovery: bool = False
    _mark: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        self._mark = self.arrival_s

    @property
    def is_terminal(self) -> bool:
        """True once the request reached exactly one terminal outcome."""
        return self.outcome is not None

    @property
    def response_s(self) -> Optional[float]:
        """End-to-end time for terminal traces, else ``None``."""
        if self.end_s is None:
            return None
        return self.end_s - self.arrival_s

    def wait_phase(self) -> str:
        """The phase the request is currently accumulating time in."""
        if self.in_recovery:
            return "recovery"
        return "sweep-wait" if self.scheduled else "queue"

    #: Tolerance for float drift when a span boundary is recomputed
    #: (e.g. ``now - locate - read`` landing an ulp before the mark).
    _EPSILON_S = 1e-6

    def advance(self, phase: str, now: float) -> None:
        """Attribute ``[mark, now]`` to ``phase`` and move the mark."""
        if now < self._mark:
            if self._mark - now > self._EPSILON_S:
                raise ValueError(
                    f"request {self.request_id}: advance to {now} before "
                    f"mark {self._mark}"
                )
            now = self._mark
        if now > self._mark:
            self.phases[phase] = self.phases.get(phase, 0.0) + (now - self._mark)
            self.spans.append((phase, self._mark, now))
            self._mark = now

    def finish(self, outcome: str, now: float) -> None:
        """Close the trace with ``outcome``; residual time goes to the
        current wait phase."""
        if self.outcome is not None:
            raise RuntimeError(
                f"request {self.request_id} already terminal "
                f"({self.outcome!r}); cannot finish as {outcome!r}"
            )
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.advance(self.wait_phase(), now)
        self.outcome = outcome
        self.end_s = now

    def phase_total(self) -> float:
        """Sum of all attributed phase durations."""
        return sum(self.phases.values())
