"""The tracer: the single recording facade the simulators talk to.

One :class:`Tracer` per simulation run captures

* a :class:`~repro.obs.spans.RequestTrace` per admitted request (phase
  chain arrival → terminal outcome),
* a :class:`~repro.obs.spans.DriveSpan` timeline per drive (plus a
  :class:`~repro.des.UtilizationTimeline` for windowed utilization),
* a scheduler-decision log (:class:`~repro.obs.spans.DecisionRecord`),
* instantaneous :class:`~repro.obs.spans.TraceEvent` records (faults,
  retries, failovers, sheds, expiries, breaker trips, ...), and
* a :class:`~repro.obs.registry.MetricRegistry` of counters/gauges.

The simulators hold an ``Optional[Tracer]`` and guard every call with
``if self.obs is not None``; tracing never touches the RNG streams, the
event heap, or any metric, so an attached tracer observes a run that is
bit-identical to an untraced one (pinned by the golden-hash tests).

Memory: request traces and the decision log are unbounded (a trace is a
whole-run artifact); drive spans and events accept an optional capacity
after which they are dropped and counted, mirroring
:class:`~repro.service.oplog.OperationLog`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..des.monitor import UtilizationTimeline
from ..workload.requests import Request
from .registry import MetricRegistry
from .spans import DecisionRecord, DriveSpan, RequestTrace, TraceEvent


class Tracer:
    """Span-based structured trace of one simulation run."""

    def __init__(
        self,
        max_drive_spans: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> None:
        self.requests: Dict[int, RequestTrace] = {}
        self.drive_spans: List[DriveSpan] = []
        self.events: List[TraceEvent] = []
        self.decisions: List[DecisionRecord] = []
        self.timeline = UtilizationTimeline()
        self.metrics = MetricRegistry()
        self.max_drive_spans = max_drive_spans
        self.max_events = max_events
        self.dropped_drive_spans = 0
        self.dropped_events = 0
        #: Optional clock for call sites without access to ``env.now``
        #: (e.g. the fault injector); bound by the runner.
        self._now_fn: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_clock(self, now_fn: Callable[[], float]) -> None:
        """Bind a ``now()`` source (usually ``lambda: env.now``)."""
        self._now_fn = now_fn

    def now(self) -> float:
        """The bound clock's current time (0.0 when unbound)."""
        return self._now_fn() if self._now_fn is not None else 0.0

    def trace_of(self, request: Request) -> Optional[RequestTrace]:
        """The trace of ``request``, or ``None`` if it never arrived."""
        return self.requests.get(request.request_id)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def on_arrival(self, request: Request, now: float) -> None:
        """A request entered the system; opens its trace."""
        self.requests[request.request_id] = RequestTrace(
            request_id=request.request_id,
            block_id=request.block_id,
            arrival_s=now,
        )
        self.metrics.inc("requests.arrived")

    def on_shed(self, request: Request, now: float, reason: str) -> None:
        """Admission control (or degraded mode) turned the request away."""
        trace = self.requests.get(request.request_id)
        if trace is not None and not trace.is_terminal:
            trace.finish("shed", now)
        self.event(now, "shed", request_id=request.request_id, reason=reason)
        self.metrics.inc("requests.shed")
        self.metrics.inc(f"requests.shed.{reason}")

    def on_expired(self, request: Request, now: float) -> None:
        """The request's TTL passed before delivery."""
        trace = self.requests.get(request.request_id)
        if trace is not None and not trace.is_terminal:
            trace.finish("expired", now)
        self.event(now, "expired", request_id=request.request_id)
        self.metrics.inc("requests.expired")

    def on_failed(self, request: Request, now: float) -> None:
        """No readable copy of the request's block remains."""
        trace = self.requests.get(request.request_id)
        if trace is not None and not trace.is_terminal:
            trace.in_recovery = True  # residual time is fault handling
            trace.finish("failed", now)
        self.event(now, "request-failed", request_id=request.request_id)
        self.metrics.inc("requests.failed")

    def on_complete(
        self, request: Request, now: float, locate_s: float, read_s: float
    ) -> None:
        """The delivering read finished at ``now``.

        ``locate_s``/``read_s`` split the physical access that delivered
        the block; the interval before it is attributed to the trace's
        current wait phase (queue / sweep-wait / recovery).
        """
        trace = self.requests.get(request.request_id)
        if trace is None or trace.is_terminal:
            return
        access_start = now - locate_s - read_s
        trace.advance(trace.wait_phase(), access_start)
        trace.advance("locate", access_start + locate_s)
        trace.advance("read", now)
        trace.outcome = "complete"
        trace.end_s = now
        self.metrics.inc("requests.completed")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def on_decision(
        self,
        now: float,
        drive: int,
        scheduler: str,
        decision,
        pending_len: int,
    ) -> None:
        """A major reschedule chose a tape and a schedule.

        Every selected request's time-so-far is attributed to ``queue``
        and its trace flips to the scheduled state.
        """
        self.decisions.append(
            DecisionRecord(
                time_s=now,
                drive=drive,
                scheduler=scheduler,
                tape_id=decision.tape_id,
                entry_count=len(decision.entries),
                request_count=decision.request_count,
                pending_len=pending_len,
                forced=getattr(decision, "forced", False),
            )
        )
        self.metrics.inc("scheduler.decisions")
        if getattr(decision, "forced", False):
            self.metrics.inc("scheduler.forced_decisions")
        for entry in decision.entries:
            for request in entry.requests:
                trace = self.requests.get(request.request_id)
                if trace is None or trace.is_terminal:
                    continue
                trace.advance(trace.wait_phase(), now)
                trace.scheduled = True
                trace.in_recovery = False

    def on_exchange(
        self, requests: Iterable[Request], end_s: float
    ) -> None:
        """A tape switch for the current sweep completed at ``end_s``."""
        for request in requests:
            trace = self.requests.get(request.request_id)
            if trace is None or trace.is_terminal:
                continue
            trace.advance("exchange", end_s)

    def on_requeue(
        self, requests: Iterable[Request], now: float, reason: str
    ) -> None:
        """Requests went back to the pending list (failover / repair)."""
        count = 0
        for request in requests:
            count += 1
            trace = self.requests.get(request.request_id)
            if trace is None or trace.is_terminal:
                continue
            trace.in_recovery = True
            trace.advance("recovery", now)
            trace.scheduled = False
            trace.in_recovery = False
        if count:
            self.event(now, "requeue", reason=reason, requests=count)
            self.metrics.inc(f"requests.requeued.{reason}", count)

    def on_fault(self, requests: Iterable[Request], now: float) -> None:
        """A fault interrupted the current attempt for ``requests``."""
        for request in requests:
            trace = self.requests.get(request.request_id)
            if trace is not None and not trace.is_terminal:
                trace.in_recovery = True

    # ------------------------------------------------------------------
    # Drive timeline
    # ------------------------------------------------------------------
    def on_op(
        self,
        drive: int,
        kind: str,
        start_s: float,
        duration_s: float,
        tape_id: Optional[int] = None,
        block_id: Optional[int] = None,
        position_mb: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Record one interval of drive activity."""
        self.timeline.record(drive, start_s, start_s + duration_s, kind)
        self.metrics.inc(f"drive.{kind}")
        if (
            self.max_drive_spans is not None
            and len(self.drive_spans) >= self.max_drive_spans
        ):
            self.dropped_drive_spans += 1
            return
        self.drive_spans.append(
            DriveSpan(
                drive=drive,
                kind=kind,
                start_s=start_s,
                duration_s=duration_s,
                tape_id=tape_id,
                block_id=block_id,
                position_mb=position_mb,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # Instantaneous events
    # ------------------------------------------------------------------
    def event(
        self, now: Optional[float], kind: str, drive: Optional[int] = None, **attrs
    ) -> None:
        """Record an instantaneous structured event.

        ``now=None`` reads the bound clock — the form call sites without
        an environment handle (the fault injector) use.
        """
        time_s = self.now() if now is None else now
        self.metrics.inc(f"events.{kind}")
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            TraceEvent(
                time_s=time_s,
                kind=kind,
                drive=drive,
                attrs=tuple(sorted(attrs.items())),
            )
        )

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the summary)
    # ------------------------------------------------------------------
    def terminal_traces(self) -> List[RequestTrace]:
        """All closed request traces, in request-id order."""
        return [
            trace
            for _rid, trace in sorted(self.requests.items())
            if trace.is_terminal
        ]

    def open_traces(self) -> List[RequestTrace]:
        """Requests still in flight when the run stopped."""
        return [
            trace
            for _rid, trace in sorted(self.requests.items())
            if not trace.is_terminal
        ]
