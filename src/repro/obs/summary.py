"""Aggregate view of one trace: the ``tape-jukebox trace`` report.

:class:`TraceSummary` reduces a :class:`~repro.obs.tracer.Tracer` to the
numbers an operator compares across runs: mean per-phase time of
completed post-warmup requests (which reconciles with the metrics
pipeline's mean response time — the phases tile each request's life),
outcome counts, per-tape read heat, per-drive busy breakdowns, the
scheduler-decision log, and the counter snapshot.  ``to_dict`` /
``from_dict`` round-trip through JSON so ``tools/trace_diff.py`` can
compare two summaries without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spans import PHASES
from .tracer import Tracer

#: Version tag of the summary dict layout.
SUMMARY_SCHEMA = "repro-trace-summary/1"


@dataclass
class TraceSummary:
    """Per-run aggregates computed from a finished trace."""

    warmup_s: float = 0.0
    #: Requests completing at or after ``warmup_s`` — the same
    #: population :class:`~repro.service.metrics.MetricsCollector`
    #: averages over, so the means reconcile.
    completed: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    open_requests: int = 0
    #: Mean seconds per phase over the measured completions.
    phase_means: Dict[str, float] = field(default_factory=dict)
    mean_response_s: float = 0.0
    #: tape_id -> number of delivering reads (post-warmup).
    tape_heat: Dict[int, int] = field(default_factory=dict)
    #: drive -> kind -> busy seconds (whole run, not warmup-trimmed).
    drive_busy: Dict[int, Dict[str, float]] = field(default_factory=dict)
    decision_count: int = 0
    forced_decisions: int = 0
    #: scheduler name -> decision count.
    decisions_by_scheduler: Dict[str, int] = field(default_factory=dict)
    #: event kind -> count.
    event_counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer: Tracer, warmup_s: float = 0.0) -> "TraceSummary":
        """Aggregate ``tracer`` (requests arriving before ``warmup_s``
        are excluded from means, mirroring the metrics pipeline)."""
        summary = cls(warmup_s=warmup_s)
        phase_sums: Dict[str, float] = {}
        response_sum = 0.0
        for trace in tracer.requests.values():
            if not trace.is_terminal:
                summary.open_requests += 1
                continue
            summary.outcomes[trace.outcome] = (
                summary.outcomes.get(trace.outcome, 0) + 1
            )
            if trace.outcome != "complete" or trace.end_s < warmup_s:
                continue
            summary.completed += 1
            response_sum += trace.response_s
            for phase, seconds in trace.phases.items():
                phase_sums[phase] = phase_sums.get(phase, 0.0) + seconds
        if summary.completed:
            summary.mean_response_s = response_sum / summary.completed
            summary.phase_means = {
                phase: phase_sums.get(phase, 0.0) / summary.completed
                for phase in PHASES
                if phase in phase_sums
            }
        for span in tracer.drive_spans:
            if span.kind == "read" and span.tape_id is not None:
                if span.start_s >= warmup_s:
                    summary.tape_heat[span.tape_id] = (
                        summary.tape_heat.get(span.tape_id, 0) + 1
                    )
        for track in tracer.timeline.tracks():
            summary.drive_busy[track] = tracer.timeline.busy_by_kind(track)
        summary.decision_count = len(tracer.decisions)
        for decision in tracer.decisions:
            if decision.forced:
                summary.forced_decisions += 1
            summary.decisions_by_scheduler[decision.scheduler] = (
                summary.decisions_by_scheduler.get(decision.scheduler, 0) + 1
            )
        for event in tracer.events:
            summary.event_counts[event.kind] = (
                summary.event_counts.get(event.kind, 0) + 1
            )
        snapshot = tracer.metrics.snapshot()
        summary.counters = snapshot["counters"]
        summary.gauges = snapshot["gauges"]
        return summary

    # ------------------------------------------------------------------
    # Serialization (consumed by tools/trace_diff.py)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-ready dict (int keys become strings)."""
        return {
            "schema": SUMMARY_SCHEMA,
            "warmup_s": self.warmup_s,
            "completed": self.completed,
            "outcomes": dict(sorted(self.outcomes.items())),
            "open_requests": self.open_requests,
            "phase_means": dict(sorted(self.phase_means.items())),
            "mean_response_s": self.mean_response_s,
            "tape_heat": {
                str(tape): count for tape, count in sorted(self.tape_heat.items())
            },
            "drive_busy": {
                str(drive): dict(sorted(kinds.items()))
                for drive, kinds in sorted(self.drive_busy.items())
            },
            "decision_count": self.decision_count,
            "forced_decisions": self.forced_decisions,
            "decisions_by_scheduler": dict(
                sorted(self.decisions_by_scheduler.items())
            ),
            "event_counts": dict(sorted(self.event_counts.items())),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        schema = payload.get("schema")
        if schema != SUMMARY_SCHEMA:
            raise ValueError(
                f"unsupported summary schema {schema!r} "
                f"(expected {SUMMARY_SCHEMA!r})"
            )
        return cls(
            warmup_s=payload.get("warmup_s", 0.0),
            completed=payload.get("completed", 0),
            outcomes=dict(payload.get("outcomes", {})),
            open_requests=payload.get("open_requests", 0),
            phase_means=dict(payload.get("phase_means", {})),
            mean_response_s=payload.get("mean_response_s", 0.0),
            tape_heat={
                int(tape): count
                for tape, count in payload.get("tape_heat", {}).items()
            },
            drive_busy={
                int(drive): dict(kinds)
                for drive, kinds in payload.get("drive_busy", {}).items()
            },
            decision_count=payload.get("decision_count", 0),
            forced_decisions=payload.get("forced_decisions", 0),
            decisions_by_scheduler=dict(
                payload.get("decisions_by_scheduler", {})
            ),
            event_counts=dict(payload.get("event_counts", {})),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def phase_mean_total(self) -> float:
        """Sum of the per-phase means; equals :attr:`mean_response_s`
        up to float rounding (the conservation property)."""
        return sum(self.phase_means.values())

    def hottest_tapes(self, top: int = 5) -> List[tuple]:
        """The ``top`` most-read tapes as ``(tape_id, reads)``."""
        ranked = sorted(self.tape_heat.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]
