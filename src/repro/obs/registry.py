"""A lightweight counter/gauge registry riding alongside the metrics.

:class:`MetricsCollector` computes the paper's steady-state summary;
this registry is the operational complement: monotonically increasing
counters and last-value gauges that any instrumented layer can bump
without declaring them up front.  It is deliberately schema-free — the
set of names that exists after a run *is* the event taxonomy the run
exercised — and deterministic: iteration order is sorted, so exports
hash stably across runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

__all__ = ["MetricRegistry"]

#: Counters accept ints and floats alike: event counts stay exact ints,
#: while additive report quantities (throughput, weighted response-time
#: numerators) roll up through the same counter machinery.
Numeric = Union[int, float]


class MetricRegistry:
    """Named counters (monotonic) and gauges (last value)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Numeric] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def inc(self, name: str, by: Numeric = 1) -> Numeric:
        """Increment counter ``name`` by ``by``; returns the new value."""
        value = self._counters.get(name, 0) + by
        self._counters[name] = value
        return value

    def count(self, name: str) -> Numeric:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Latest value of gauge ``name`` (``default`` if never set)."""
        return self._gauges.get(name, default)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold ``other`` into this registry; returns ``self`` for chaining.

        Counters add; gauges take ``other``'s (last-write-wins), matching
        their single-registry semantics.  Used to aggregate reliability
        counters across the several campaigns a chaos scenario runs.
        """
        for name, value in other.counters():
            self.inc(name, value)
        for name, value in other.gauges():
            self.set_gauge(name, value)
        return self

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Tuple[str, Numeric]]:
        """All counters in sorted name order."""
        return iter(sorted(self._counters.items()))

    def gauges(self) -> Iterator[Tuple[str, float]]:
        """All gauges in sorted name order."""
        return iter(sorted(self._gauges.items()))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-ready ``{"counters": ..., "gauges": ...}`` dict."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)
