"""End-to-end storage hierarchy: memory -> disk -> tape jukebox.

Client requests are checked against the memory tier, then the disk
tier; only misses reach the jukebox (the paper's premise that jukeboxes
see "relatively cold" traffic).  Blocks read from tape are promoted
into the disk cache, and disk hits are promoted into memory, so the
hierarchy shapes its own miss stream: sustained hot traffic is absorbed
above the jukebox, flattening the skew (RH) the tape tier observes —
exactly the operating regime the paper's jukebox study assumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..des import Environment
from ..layout.catalog import BlockCatalog
from ..service.simulator import JukeboxSimulator
from ..stats import RunningStats
from ..workload.requests import Request, RequestFactory
from ..workload.skew import HotColdSkew
from .cache import LRUCache
from .disk import DiskModel, MemoryModel


class _TapeOnlySource:
    """Inert source: the hierarchy injects requests itself."""

    is_closed = False

    def initial_requests(self, now: float = 0.0) -> list:
        return []

    def on_completion(self, now: float) -> None:
        return None

    def arrivals(self, horizon_s: float, start_s: float = 0.0):
        return iter(())


@dataclass
class TierStats:
    """Per-tier hit counts and user-visible latency."""

    memory_hits: int = 0
    disk_hits: int = 0
    tape_misses: int = 0
    latency: RunningStats = field(default_factory=RunningStats)
    tape_latency: RunningStats = field(default_factory=RunningStats)

    @property
    def total(self) -> int:
        """All client requests served."""
        return self.memory_hits + self.disk_hits + self.tape_misses

    @property
    def jukebox_fraction(self) -> float:
        """Fraction of client traffic that reached the tape tier."""
        return self.tape_misses / self.total if self.total else 0.0


class HierarchySimulator:
    """Poisson client stream against a three-tier storage hierarchy."""

    def __init__(
        self,
        jukebox_simulator: JukeboxSimulator,
        memory_blocks: int,
        disk_blocks: int,
        skew: HotColdSkew,
        rng: random.Random,
        mean_interarrival_s: float,
        disk: DiskModel = DiskModel(),
        memory: MemoryModel = MemoryModel(),
    ) -> None:
        if mean_interarrival_s <= 0:
            raise ValueError(
                f"mean_interarrival_s must be positive, got {mean_interarrival_s!r}"
            )
        self.tape = jukebox_simulator
        self.env: Environment = jukebox_simulator.env
        self.catalog: BlockCatalog = jukebox_simulator.context.catalog
        self.memory_cache = LRUCache(memory_blocks)
        self.disk_cache = LRUCache(disk_blocks)
        self.skew = skew
        self.rng = rng
        self.mean_interarrival_s = mean_interarrival_s
        self.disk = disk
        self.memory = memory
        self.stats = TierStats()
        self._factory = RequestFactory()
        #: Blocks with a tape read in flight; coalesces concurrent misses.
        self._in_flight: dict = {}
        self.tape_request_blocks = RunningStats()  # hot=1 / cold=0 indicator
        self.tape.on_request_complete = self._tape_completed

    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> TierStats:
        """Simulate client traffic until ``horizon_s``."""
        self.tape.start(horizon_s)
        self.env.process(self._client_process(horizon_s))
        self.env.run(until=horizon_s)
        self.tape.metrics.finalize(self.env.now)
        return self.stats

    # ------------------------------------------------------------------
    def _client_process(self, horizon_s: float):
        while True:
            delay = self.rng.expovariate(1.0 / self.mean_interarrival_s)
            if self.env.now + delay > horizon_s:
                return
            yield delay
            block_id = self.skew.draw_block(self.rng, self.catalog)
            self.env.process(self._serve(block_id, self.env.now))

    def _serve(self, block_id: int, arrival_s: float):
        block_mb = self.catalog.block_mb
        if self.memory_cache.access(block_id):
            self.stats.memory_hits += 1
            yield self.memory.service_s(block_mb)
            self.stats.latency.add(self.env.now - arrival_s)
            return
        if self.disk_cache.access(block_id):
            self.stats.disk_hits += 1
            yield self.disk.service_s(block_mb)
            self.memory_cache.insert(block_id)
            self.stats.latency.add(self.env.now - arrival_s)
            return
        # Tape miss: forward to the jukebox, coalescing with any read of
        # the same block already in flight.
        self.stats.tape_misses += 1
        self.tape_request_blocks.add(1.0 if self.catalog.is_hot(block_id) else 0.0)
        waiters = self._in_flight.get(block_id)
        if waiters is None:
            self._in_flight[block_id] = [arrival_s]
            request = self._factory.create(block_id, self.env.now)
            self.tape.submit(request)
        else:
            waiters.append(arrival_s)

    def _tape_completed(self, request: Request, now: float) -> None:
        """Promote the block and complete every waiting client request."""
        self.disk_cache.insert(request.block_id)
        waiters = self._in_flight.pop(request.block_id, [])
        for arrival_s in waiters:
            self.stats.latency.add(now - arrival_s)
            self.stats.tape_latency.add(now - arrival_s)

    # ------------------------------------------------------------------
    @property
    def observed_tape_skew(self) -> float:
        """Percent of jukebox requests that were for hot blocks.

        Compare against the client RH to see how much skew the upper
        tiers absorbed before traffic reached the tape.
        """
        return 100.0 * self.tape_request_blocks.mean
