"""LRU block caches for the memory and disk tiers.

The paper's introduction positions tape jukeboxes at the bottom of a
hierarchy: "hot data are placed or cached in semiconductor memory, and
warm data are on magnetic disks" — the jukebox holds relatively cold
data.  These caches model the upper tiers so the whole hierarchy can be
simulated end to end.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class LRUCache:
    """Fixed-capacity least-recently-used cache of logical block ids."""

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_blocks!r}")
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit (0.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, block_id: int) -> bool:
        """Look up ``block_id``; True on hit (and refresh its recency)."""
        if block_id in self._entries:
            self._entries.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block_id: int) -> Optional[int]:
        """Add ``block_id`` as most-recent; return the evicted id, if any.

        Inserting an already-cached block refreshes it (no eviction).
        A zero-capacity cache rejects everything.
        """
        if self.capacity_blocks == 0:
            return None
        if block_id in self._entries:
            self._entries.move_to_end(block_id)
            return None
        evicted = None
        if len(self._entries) >= self.capacity_blocks:
            evicted, _none = self._entries.popitem(last=False)
        self._entries[block_id] = None
        return evicted

    def contents(self) -> list:
        """Cached block ids, least-recent first."""
        return list(self._entries)
