"""Storage hierarchy tier: memory and disk caches above the jukebox."""

from .cache import LRUCache
from .disk import DiskModel, MemoryModel
from .simulator import HierarchySimulator, TierStats

__all__ = [
    "DiskModel",
    "HierarchySimulator",
    "LRUCache",
    "MemoryModel",
    "TierStats",
]
