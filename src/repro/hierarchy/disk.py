"""A simple magnetic-disk service model for the warm tier.

Mid-1990s commodity disk figures: ~10 ms average positioning and a
sequential transfer rate in the tens of MB/s.  The warm tier serves
whole logical blocks (the same 16 MB unit the jukebox uses), so
transfer dominates; the model is deliberately simple — the hierarchy
experiments care about the *orders of magnitude* between tiers (memory
microseconds, disk hundreds of milliseconds, tape minutes), not disk
microbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Seek + rotational overhead plus streaming transfer."""

    positioning_s: float = 0.010
    transfer_mb_s: float = 40.0

    def service_s(self, size_mb: float) -> float:
        """Seconds to deliver ``size_mb`` MB from disk."""
        if size_mb < 0:
            raise ValueError(f"size must be >= 0, got {size_mb!r}")
        return self.positioning_s + size_mb / self.transfer_mb_s


@dataclass(frozen=True)
class MemoryModel:
    """Semiconductor-memory tier: effectively instantaneous at this scale."""

    service_s_per_request: float = 0.0002

    def service_s(self, size_mb: float) -> float:
        """Seconds to deliver a block from memory (size-independent here)."""
        if size_mb < 0:
            raise ValueError(f"size must be >= 0, got {size_mb!r}")
        return self.service_s_per_request
