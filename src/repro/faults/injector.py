"""The fault injector: seeded, typed fault decisions for drive ops.

The injector sits beside the timing model (it composes with
:class:`~repro.tape.noisy.NoisyTimingModel`, which perturbs *durations*,
whereas this layer decides *outcomes*): the simulator performs an
operation, then asks the injector whether it actually succeeded.

All randomness is drawn from :class:`~repro.rng.RandomStreams` under the
fault seed, one named stream per fault class, so fault patterns are
reproducible and independent of both the workload streams and each
other.  Permanent bad-block regions are sampled once, up front, from the
catalog, so the same seed always condemns the same physical copies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..layout.catalog import BlockCatalog, Replica
from ..rng import RandomStreams
from .config import FaultConfig
from .errors import BadBlockError, FaultError, MediaError, RobotPickError


class FaultInjector:
    """Raises seeded, typed faults against drive/robot operations.

    One injector serves a whole simulation (all drives); per-drive
    failure clocks use per-drive random streams.  The mutable
    :attr:`failed_tapes` and :attr:`bad_replicas` sets are shared with
    the scheduler-visible masking layer, so recovery code marking a tape
    or copy dead immediately hides it from future scheduling decisions.
    """

    def __init__(
        self,
        config: FaultConfig,
        catalog: BlockCatalog,
        drive_count: int = 1,
    ) -> None:
        if drive_count < 1:
            raise ValueError(f"drive_count must be >= 1, got {drive_count!r}")
        self.config = config
        self.catalog = catalog
        streams = RandomStreams(config.seed)
        self._media_rng = streams.stream("media-errors")
        self._robot_rng = streams.stream("robot-pick")
        self._drive_rngs = [
            streams.stream(f"drive-failures:{index}") for index in range(drive_count)
        ]
        #: Ground truth: ``(tape_id, block_id)`` copies sitting in
        #: permanently unreadable regions, seeded from ``bad_replica_rate``.
        #: The *system* does not see this set — it discovers bad copies
        #: by reading them.
        self.bad_replicas: Set[Tuple[int, int]] = set()
        if config.bad_replica_rate > 0.0:
            bad_rng = streams.stream("bad-blocks")
            for block_id in range(catalog.n_blocks):
                for replica in catalog.replicas_of(block_id):
                    if bad_rng.random() < config.bad_replica_rate:
                        self.bad_replicas.add((replica.tape_id, block_id))
        #: Copies the recovery layer has *discovered* to be unreadable
        #: (failed permanent reads, exhausted transient-retry budgets).
        #: Failover and lost-block decisions use only this knowledge.
        self.known_bad: Set[Tuple[int, int]] = set()
        #: Tapes taken out of service (robot damage, stuck cartridge).
        self.failed_tapes: Set[int] = set()
        #: Per-drive absolute time of the next hardware failure.
        self._next_failure_s: List[float] = [
            self._sample_failure_delay(index, 0.0) for index in range(drive_count)
        ]
        #: Injected-fault counts by fault ``kind``.
        self.injected: Dict[str, int] = {}
        #: Optional :class:`~repro.obs.Tracer`; wired by the simulator
        #: when tracing is on.  The injector has no environment handle,
        #: so its events read the tracer's bound clock (``now=None``).
        self.obs = None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_fault(self, tape_id: int, block_id: int) -> Optional[FaultError]:
        """Outcome of a just-performed read; ``None`` means success."""
        if (tape_id, block_id) in self.bad_replicas or (
            tape_id,
            block_id,
        ) in self.known_bad:
            return self._count(
                BadBlockError(
                    f"block {block_id} unreadable on tape {tape_id}",
                    tape_id=tape_id,
                    block_id=block_id,
                )
            )
        rate = self.config.media_rate_for(tape_id)
        if rate > 0.0 and self._media_rng.random() < rate:
            return self._count(
                MediaError(
                    f"soft error reading block {block_id} on tape {tape_id}",
                    tape_id=tape_id,
                    block_id=block_id,
                )
            )
        return None

    def condemn_replica(self, tape_id: int, block_id: int) -> None:
        """Record a copy as known-unreadable (discovered or escalated)."""
        self.known_bad.add((tape_id, block_id))
        if self.obs is not None:
            self.obs.event(
                None, "replica-condemned", tape_id=tape_id, block_id=block_id
            )

    # ------------------------------------------------------------------
    # Robot path
    # ------------------------------------------------------------------
    def robot_pick_fault(self, tape_id: int) -> Optional[RobotPickError]:
        """Outcome of one robot pick attempt; ``None`` means success."""
        rate = self.config.robot_pick_error_rate
        if rate > 0.0 and self._robot_rng.random() < rate:
            return self._count(
                RobotPickError(f"robot failed to pick tape {tape_id}", tape_id=tape_id)
            )
        return None

    def fail_tape(self, tape_id: int) -> None:
        """Take ``tape_id`` permanently out of service (masks it)."""
        self.failed_tapes.add(tape_id)
        if self.obs is not None:
            self.obs.event(None, "tape-failed", tape_id=tape_id)

    def tape_failed(self, tape_id: int) -> bool:
        """True when ``tape_id`` has been taken out of service."""
        return tape_id in self.failed_tapes

    # ------------------------------------------------------------------
    # Drive failure clock (MTBF/MTTR)
    # ------------------------------------------------------------------
    def drive_failure_due(self, drive_index: int, now: float) -> bool:
        """True when drive ``drive_index``'s next failure time has passed."""
        return now >= self._next_failure_s[drive_index]

    def begin_repair(self, drive_index: int, now: float) -> float:
        """Start repairing a failed drive; return the repair duration.

        Also re-arms the drive's failure clock: the next failure is
        sampled from the MTBF distribution *after* the repair completes.
        """
        self._count_kind("drive-failure")
        rng = self._drive_rngs[drive_index]
        repair_s = rng.expovariate(1.0 / self.config.drive_mttr_s)
        self._next_failure_s[drive_index] = self._sample_failure_delay(
            drive_index, now + repair_s
        )
        return repair_s

    def _sample_failure_delay(self, drive_index: int, after_s: float) -> float:
        if self.config.drive_mtbf_s is None:
            return float("inf")
        rng = self._drive_rngs[drive_index]
        return after_s + rng.expovariate(1.0 / self.config.drive_mtbf_s)

    # ------------------------------------------------------------------
    # Failover support
    # ------------------------------------------------------------------
    def surviving_replicas(self, block_id: int) -> List[Replica]:
        """Copies of ``block_id`` not known-bad and not on failed tapes.

        This is the *system's* view: copies that are bad but not yet
        discovered still count as survivors — failover may land on one
        and discover it the hard way, exactly like a real I/O stack.
        """
        return [
            replica
            for replica in self.catalog.replicas_of(block_id)
            if (replica.tape_id, block_id) not in self.known_bad
            and replica.tape_id not in self.failed_tapes
        ]

    def block_lost(self, block_id: int) -> bool:
        """True when every copy of ``block_id`` is known to be gone."""
        return not self.surviving_replicas(block_id)

    # ------------------------------------------------------------------
    def _count(self, fault: FaultError) -> FaultError:
        self._count_kind(fault.kind)
        return fault

    def _count_kind(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
