"""Fault-model configuration.

All rates default to zero and ``FaultConfig()`` is therefore inert:
:attr:`FaultConfig.enabled` is False and the experiment runner skips the
injection layer entirely, so fault-free runs stay bit-identical to a
build without this subsystem (pay-for-what-you-use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .retry import RetryPolicy


@dataclass(frozen=True)
class FaultConfig:
    """Rates and seeds of every injectable fault class.

    Attributes:
        media_error_rate: per-read probability of a transient soft error.
        tape_media_error_rates: ``(tape_id, rate)`` overrides for tapes
            with worse media than the default rate.
        bad_replica_rate: per-physical-copy probability that the copy
            sits in a permanently unreadable region (sampled once, at
            injector construction, from the fault seed).
        robot_pick_error_rate: per-swap probability the arm mispicks.
        drive_mtbf_s: mean time between drive failures (exponential);
            ``None`` disables drive failures.
        drive_mttr_s: mean time to repair a failed drive (exponential).
        seed: root seed of the fault random streams (independent of the
            workload seed, so fault patterns are reproducible per se).
        retry: bounded-retry/backoff policy for transient faults.
    """

    media_error_rate: float = 0.0
    tape_media_error_rates: Tuple[Tuple[int, float], ...] = ()
    bad_replica_rate: float = 0.0
    robot_pick_error_rate: float = 0.0
    drive_mtbf_s: Optional[float] = None
    drive_mttr_s: float = 3600.0
    seed: int = 7
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Normalize list/iterable input to a tuple of tuples: a frozen
        # dataclass is only hashable when every field is, and configs
        # must hash/equal stably to serve as campaign cache keys (a
        # JSON round trip or a careless caller hands us lists).
        object.__setattr__(
            self,
            "tape_media_error_rates",
            tuple((int(tape_id), float(rate)) for tape_id, rate in self.tape_media_error_rates),
        )
        for name in ("media_error_rate", "bad_replica_rate", "robot_pick_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for tape_id, rate in self.tape_media_error_rates:
            if tape_id < 0:
                raise ValueError(f"tape_media_error_rates tape_id {tape_id!r} < 0")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"tape_media_error_rates rate for tape {tape_id} must be "
                    f"in [0, 1], got {rate!r}"
                )
        if self.drive_mtbf_s is not None and self.drive_mtbf_s <= 0:
            raise ValueError(
                f"drive_mtbf_s must be positive, got {self.drive_mtbf_s!r}"
            )
        if self.drive_mttr_s <= 0:
            raise ValueError(f"drive_mttr_s must be positive, got {self.drive_mttr_s!r}")

    @property
    def enabled(self) -> bool:
        """True when any fault class can actually fire."""
        return bool(
            self.media_error_rate > 0.0
            or any(rate > 0.0 for _tape, rate in self.tape_media_error_rates)
            or self.bad_replica_rate > 0.0
            or self.robot_pick_error_rate > 0.0
            or self.drive_mtbf_s is not None
        )

    def media_rate_for(self, tape_id: int) -> float:
        """Effective soft-error rate for reads on ``tape_id``."""
        for override_tape, rate in self.tape_media_error_rates:
            if override_tape == tape_id:
                return rate
        return self.media_error_rate
