"""Typed fault exceptions raised by the injection layer.

Every fault carries a stable ``kind`` string (used as the metrics
counter key) and a ``transient`` flag: transient faults are worth
retrying on the same physical copy, permanent ones are not and must be
survived — if at all — by failing over to another replica.
"""

from __future__ import annotations

from typing import Optional


class FaultError(RuntimeError):
    """Base class of all injected faults."""

    #: Stable counter key, e.g. ``"media-error"``.
    kind: str = "fault"
    #: True when retrying the same physical operation can succeed.
    transient: bool = False

    def __init__(
        self,
        message: str,
        tape_id: Optional[int] = None,
        block_id: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.tape_id = tape_id
        self.block_id = block_id


class MediaError(FaultError):
    """Transient soft read error (dirty head, marginal media patch)."""

    kind = "media-error"
    transient = True


class BadBlockError(FaultError):
    """Permanent media defect: this physical copy is unreadable forever."""

    kind = "bad-block"
    transient = False


class DriveFailureError(FaultError):
    """The drive hardware failed and needs repair (MTBF/MTTR model)."""

    kind = "drive-failure"
    transient = False


class RobotPickError(FaultError):
    """The robot arm failed to pick/insert a cartridge (retryable)."""

    kind = "robot-pick"
    transient = True
