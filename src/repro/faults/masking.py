"""Scheduler-visible masking of failed hardware.

Schedulers discover a request's candidate copies through the block
catalog — directly (envelope, FIFO) or via the pending list's candidate
queries (static, dynamic).  :class:`FaultMaskedCatalog` is a live view
of the real catalog that hides every copy on an out-of-service tape, so
giving the scheduler context (and its pending list) the masked view
makes every scheduler family fault-aware without per-algorithm changes.

The masks are the injector's mutable ``failed_tapes`` and ``known_bad``
sets, shared by reference: a tape or copy condemned mid-run disappears
from the very next scheduling decision, so the scheduler never re-plans
a request onto a copy the recovery layer already discovered to be dead.
Requests whose every copy is masked must be failed by the recovery layer
before rescheduling (the simulator's ``_drop_lost_requests``), since a
masked ``replicas_of`` may be empty.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Set, Tuple

from ..layout.catalog import BlockCatalog, Replica


class FaultMaskedCatalog:
    """A read-only catalog view hiding dead copies and failed tapes."""

    #: Replica answers can change between calls (masks grow as faults
    #: are discovered).  Consumers that index replicas at insertion time
    #: (the pending list) check this flag and re-filter per query.
    dynamic_replicas = True

    def __init__(
        self,
        inner: BlockCatalog,
        failed_tapes: Set[int],
        known_bad: Optional[Set[Tuple[int, int]]] = None,
    ) -> None:
        self._inner = inner
        self._failed = failed_tapes
        self._known_bad = known_bad if known_bad is not None else set()

    # -- pass-through block geometry ------------------------------------
    @property
    def block_mb(self) -> float:
        """Logical block size in MB."""
        return self._inner.block_mb

    @property
    def n_blocks(self) -> int:
        """Number of logical blocks."""
        return self._inner.n_blocks

    @property
    def n_hot(self) -> int:
        """Number of hot logical blocks."""
        return self._inner.n_hot

    @property
    def n_cold(self) -> int:
        """Number of cold logical blocks."""
        return self._inner.n_cold

    def is_hot(self, block_id: int) -> bool:
        """True when ``block_id`` is a hot block."""
        return self._inner.is_hot(block_id)

    def _masked(self, tape_id: int, block_id: int) -> bool:
        return tape_id in self._failed or (tape_id, block_id) in self._known_bad

    # -- masked replica queries -----------------------------------------
    def replicas_of(self, block_id: int) -> Tuple[Replica, ...]:
        """Surviving copies of ``block_id`` (may be empty)."""
        return tuple(
            replica
            for replica in self._inner.replicas_of(block_id)
            if not self._masked(replica.tape_id, block_id)
        )

    def replica_on(self, block_id: int, tape_id: int) -> Replica:
        """The copy on ``tape_id``; ``KeyError`` if absent or masked."""
        if self._masked(tape_id, block_id):
            raise KeyError(f"block {block_id} has no live copy on tape {tape_id}")
        return self._inner.replica_on(block_id, tape_id)

    def has_replica_on(self, block_id: int, tape_id: int) -> bool:
        """True when ``block_id`` has a surviving copy on ``tape_id``."""
        if self._masked(tape_id, block_id):
            return False
        return self._inner.has_replica_on(block_id, tape_id)

    def replication_degree(self, block_id: int) -> int:
        """Number of copies of ``block_id`` on surviving tapes."""
        return len(self.replicas_of(block_id))

    # -- masked per-tape queries ----------------------------------------
    @property
    def tape_ids(self) -> Iterable[int]:
        """Surviving tape ids holding at least one block."""
        return [
            tape_id for tape_id in self._inner.tape_ids if tape_id not in self._failed
        ]

    def tape_contents(self, tape_id: int) -> Tuple[Tuple[float, int], ...]:
        """Live contents of ``tape_id`` (empty when it is out of service)."""
        if tape_id in self._failed:
            return ()
        return tuple(
            (position_mb, block_id)
            for position_mb, block_id in self._inner.tape_contents(tape_id)
            if (tape_id, block_id) not in self._known_bad
        )

    def blocks_on_tape(self, tape_id: int) -> List[int]:
        """Live blocks on ``tape_id`` (empty when it is out of service)."""
        if tape_id in self._failed:
            return []
        return [
            block_id
            for block_id in self._inner.blocks_on_tape(tape_id)
            if (tape_id, block_id) not in self._known_bad
        ]

    def total_copies(self) -> int:
        """Total copies across surviving tapes."""
        return sum(
            len(self.replicas_of(block_id)) for block_id in range(self.n_blocks)
        )

    def as_mapping(self) -> Mapping[int, Tuple[Replica, ...]]:
        """Read-only ``block_id -> surviving replicas`` view."""
        return {
            block_id: self.replicas_of(block_id) for block_id in range(self.n_blocks)
        }
