"""Bounded retry with exponential backoff, in simulated time.

The policy is deliberately tiny: it answers "may I try again?" and "how
long do I wait first?".  The simulator owns the loop; backoff waits are
simulated-time timeouts during which the drive sits idle, so retries
show up as response-time degradation exactly as they would in a real
jukebox.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and exponential-backoff schedule for one operation.

    Attributes:
        max_attempts: total tries of one physical operation (1 = no retry).
        base_backoff_s: wait before the first retry.
        multiplier: backoff growth factor per subsequent retry.
        max_backoff_s: ceiling on any single backoff wait.
    """

    max_attempts: int = 3
    base_backoff_s: float = 2.0
    multiplier: float = 2.0
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_backoff_s < 0:
            raise ValueError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s!r}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                f"max_backoff_s {self.max_backoff_s!r} below "
                f"base_backoff_s {self.base_backoff_s!r}"
            )

    def allows(self, attempts_made: int) -> bool:
        """True when another attempt fits the budget."""
        return attempts_made < self.max_attempts

    def backoff_s(self, retry_index: int) -> float:
        """Wait before retry number ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index!r}")
        return min(
            self.max_backoff_s, self.base_backoff_s * self.multiplier**retry_index
        )

    def total_backoff_s(self) -> float:
        """Sum of all backoff waits a fully exhausted budget incurs."""
        return sum(self.backoff_s(index) for index in range(self.max_attempts - 1))
