"""Fault injection and recovery for the jukebox simulator.

The subsystem has three layers:

* **injection** — :class:`FaultInjector` raises typed, seeded faults
  (transient :class:`MediaError`, permanent :class:`BadBlockError`,
  :class:`DriveFailureError` under an MTBF/MTTR clock, and
  :class:`RobotPickError`) against the simulator's drive operations;
* **recovery** — :class:`RetryPolicy` bounds retries with exponential
  backoff in simulated time; replica failover re-queues a failed read
  against a surviving copy from the catalog; failed drives release
  their claimed tapes and their sweeps are redistributed (multi-drive
  degraded mode);
* **masking** — :class:`FaultMaskedCatalog` hides out-of-service tapes
  from every scheduler's replica and candidate queries.

With all rates zero (the default :class:`FaultConfig`) the runner skips
the subsystem entirely and simulation results are bit-identical to a
fault-free build.
"""

from .config import FaultConfig
from .errors import (
    BadBlockError,
    DriveFailureError,
    FaultError,
    MediaError,
    RobotPickError,
)
from .injector import FaultInjector
from .masking import FaultMaskedCatalog
from .retry import RetryPolicy

__all__ = [
    "BadBlockError",
    "DriveFailureError",
    "FaultConfig",
    "FaultError",
    "FaultInjector",
    "FaultMaskedCatalog",
    "MediaError",
    "RetryPolicy",
    "RobotPickError",
]
