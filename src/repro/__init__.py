"""Reproduction of Hillyer, Rastogi & Silberschatz (ICDE 1999):
*Scheduling and Data Replication to Improve Tape Jukebox Performance*.

The package is organized as substrates plus the paper's contribution:

* :mod:`repro.des` — discrete-event simulation kernel;
* :mod:`repro.stats` — online statistics;
* :mod:`repro.tape` — tape drive / robot / jukebox hardware model with
  the paper's measured Exabyte EXB-8505XL timing constants;
* :mod:`repro.layout` — data placement and replication (catalog);
* :mod:`repro.workload` — hot/cold skewed closed/open request sources;
* :mod:`repro.core` — the scheduling algorithms (FIFO, static, dynamic,
  and the envelope-extension algorithm);
* :mod:`repro.service` — the four-step service model simulator;
* :mod:`repro.federation` — multi-library fleets behind a global
  scheduler tier with cross-library replication;
* :mod:`repro.experiments` — configs, runs, and per-figure regeneration;
* :mod:`repro.analysis` — cost-performance model and Theorem-2 helpers.

Quickstart (one run surface for every config kind)::

    from repro import ExperimentConfig, run

    result = run(ExperimentConfig(
        scheduler="envelope-max-bandwidth", replicas=9,
        start_position=1.0, queue_length=60, horizon_s=200_000,
    ))
    print(result.report)

``run`` also accepts :class:`repro.service.farm.FarmConfig` and
:class:`repro.federation.FederationConfig`; the legacy
``run_experiment``/``run_farm`` entry points still work but emit a
``DeprecationWarning``.
"""

from .api import run
from .experiments.config import ExperimentConfig
from .experiments.runner import ExperimentResult, build_simulator, run_experiment
from .federation import FederationConfig, LibraryConfig
from .layout.placement import Layout, PlacementSpec
from .service.farm import FarmConfig

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FarmConfig",
    "FederationConfig",
    "Layout",
    "LibraryConfig",
    "PlacementSpec",
    "build_simulator",
    "run",
    "run_experiment",
    "__version__",
]
