"""Reproduction of Hillyer, Rastogi & Silberschatz (ICDE 1999):
*Scheduling and Data Replication to Improve Tape Jukebox Performance*.

The package is organized as substrates plus the paper's contribution:

* :mod:`repro.des` — discrete-event simulation kernel;
* :mod:`repro.stats` — online statistics;
* :mod:`repro.tape` — tape drive / robot / jukebox hardware model with
  the paper's measured Exabyte EXB-8505XL timing constants;
* :mod:`repro.layout` — data placement and replication (catalog);
* :mod:`repro.workload` — hot/cold skewed closed/open request sources;
* :mod:`repro.core` — the scheduling algorithms (FIFO, static, dynamic,
  and the envelope-extension algorithm);
* :mod:`repro.service` — the four-step service model simulator;
* :mod:`repro.experiments` — configs, runs, and per-figure regeneration;
* :mod:`repro.analysis` — cost-performance model and Theorem-2 helpers.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        scheduler="envelope-max-bandwidth", replicas=9,
        start_position=1.0, queue_length=60, horizon_s=200_000,
    ))
    print(result.report)
"""

from .experiments.config import ExperimentConfig
from .experiments.runner import ExperimentResult, build_simulator, run_experiment
from .layout.placement import Layout, PlacementSpec

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Layout",
    "PlacementSpec",
    "build_simulator",
    "run_experiment",
    "__version__",
]
