"""Layout builders: where hot data, cold data, and replicas live on tape.

The paper's placement parameter space (Sections 4.3-4.5):

* **Layout** — *horizontal* spreads hot data over all tapes; *vertical*
  dedicates whole tapes (one, for the studied PH=10% on 10 tapes) to hot
  data and distributes replicas round-robin over the remaining tapes.
* **SP (start position)** — normalized position in [0, 1] of the hot-data
  run within each tape: 0 = beginning of tape, 1 = end.
* **NR (replicas)** — extra copies of each hot block, at most one copy of
  a block per tape, distributed round-robin across tapes.

Capacity accounting follows Section 4.8: with ``PH`` percent hot and
``NR`` replicas the stored volume expands by ``E = 1 + NR * PH / 100``,
so the number of logical blocks that fit in the jukebox shrinks to
``total_slots / E``.

Tapes are written contiguously from position 0; any rounding slack is
unused space at the end of a tape.  ``SP`` positions the hot run within a
tape's *used* region (identical to positioning within the full tape when
the tape is full, which is the paper's situation).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .catalog import BlockCatalog, Replica


class Layout(enum.Enum):
    """Hot-data layout across tapes."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclass(frozen=True)
class PlacementSpec:
    """Full specification of a data layout (the paper's notation).

    Attributes:
        layout: horizontal or vertical hot-data layout.
        percent_hot: PH — percent of logical blocks that are hot.
        replicas: NR — extra copies of each hot block (0..tape_count-1).
        start_position: SP — normalized hot-run position within a tape.
        block_mb: logical block size in MB (the paper settles on 16 MB).
        pack_cold: pack cold data onto as few tapes as possible instead of
            spreading it round-robin (the Section 4.8 spare-capacity
            comparison scheme).
    """

    layout: Layout = Layout.HORIZONTAL
    percent_hot: float = 10.0
    replicas: int = 0
    start_position: float = 0.0
    block_mb: float = 16.0
    pack_cold: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.percent_hot <= 100.0:
            raise ValueError(f"percent_hot must be in [0, 100], got {self.percent_hot!r}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas!r}")
        if not 0.0 <= self.start_position <= 1.0:
            raise ValueError(
                f"start_position must be in [0, 1], got {self.start_position!r}"
            )
        if self.block_mb <= 0:
            raise ValueError(f"block_mb must be positive, got {self.block_mb!r}")

    @property
    def expansion_factor(self) -> float:
        """``E = 1 + NR * PH / 100`` (paper Section 4.8)."""
        return expansion_factor(self.replicas, self.percent_hot)


def expansion_factor(replicas: int, percent_hot: float) -> float:
    """Storage expansion ``E = 1 + NR * PH / 100`` from replication."""
    return 1.0 + replicas * percent_hot / 100.0


def logical_block_budget(
    total_slots: int, replicas: int, percent_hot: float
) -> tuple:
    """Largest ``(n_logical, n_hot)`` that fit ``total_slots`` physical slots.

    Solves ``n_logical + NR * n_hot <= total_slots`` with
    ``n_hot ~= n_logical * PH / 100`` (rounded), preferring the largest
    feasible ``n_logical``.
    """
    if total_slots <= 0:
        raise ValueError(f"total_slots must be positive, got {total_slots!r}")
    expansion = expansion_factor(replicas, percent_hot)
    n_logical = int(total_slots / expansion)
    while n_logical > 0:
        n_hot = round(n_logical * percent_hot / 100.0)
        if n_logical + replicas * n_hot <= total_slots:
            return n_logical, n_hot
        n_logical -= 1
    raise ValueError(
        f"no feasible layout: {total_slots} slots, NR={replicas}, PH={percent_hot}"
    )


class _TapeBuilder:
    """Accumulates a single tape's hot-run and cold blocks, then lays them out."""

    def __init__(self, tape_id: int, slot_capacity: int) -> None:
        self.tape_id = tape_id
        self.slot_capacity = slot_capacity
        self.hot_blocks: List[int] = []  # block ids in the hot run (primaries+replicas)
        self.cold_blocks: List[int] = []

    @property
    def used(self) -> int:
        return len(self.hot_blocks) + len(self.cold_blocks)

    @property
    def free(self) -> int:
        return self.slot_capacity - self.used

    def layout(self, start_position: float, block_mb: float) -> Dict[int, Replica]:
        """Assign slot positions; return ``block_id -> Replica`` for this tape."""
        used = self.used
        if used > self.slot_capacity:
            raise ValueError(
                f"tape {self.tape_id} over capacity: {used} > {self.slot_capacity}"
            )
        hot_run = sorted(self.hot_blocks)
        cold_run = sorted(self.cold_blocks)
        hot_start = round(start_position * (used - len(hot_run)))
        placements: Dict[int, Replica] = {}
        slot = 0
        cold_index = 0
        # Cold blocks fill slots below the hot run, then the hot run, then
        # the remaining cold blocks.
        while slot < hot_start:
            block_id = cold_run[cold_index]
            placements[block_id] = Replica(self.tape_id, slot * block_mb)
            cold_index += 1
            slot += 1
        for block_id in hot_run:
            placements[block_id] = Replica(self.tape_id, slot * block_mb)
            slot += 1
        while cold_index < len(cold_run):
            block_id = cold_run[cold_index]
            placements[block_id] = Replica(self.tape_id, slot * block_mb)
            cold_index += 1
            slot += 1
        return placements


def build_catalog(
    spec: PlacementSpec,
    tape_count: int,
    capacity_mb: float,
    data_blocks: Optional[int] = None,
) -> BlockCatalog:
    """Construct the :class:`BlockCatalog` realizing ``spec`` on a jukebox.

    By default the jukebox is filled to capacity (the paper's setting).
    ``data_blocks`` caps the logical data volume instead — the partially
    filled jukeboxes of the Section 4.8 lifecycle — leaving genuine
    spare slots beyond the replicas.
    """
    if tape_count <= 0:
        raise ValueError(f"tape_count must be positive, got {tape_count!r}")
    slots_per_tape = int(capacity_mb // spec.block_mb)
    if slots_per_tape == 0:
        raise ValueError(
            f"block size {spec.block_mb} MB exceeds tape capacity {capacity_mb} MB"
        )
    total_slots = tape_count * slots_per_tape
    n_logical, n_hot = logical_block_budget(
        total_slots, spec.replicas, spec.percent_hot
    )
    if data_blocks is not None:
        if data_blocks <= 0:
            raise ValueError(f"data_blocks must be positive, got {data_blocks!r}")
        if data_blocks < n_logical:
            n_logical = data_blocks
            n_hot = round(n_logical * spec.percent_hot / 100.0)
    if n_hot > 0 and spec.replicas + 1 > tape_count:
        raise ValueError(
            f"NR={spec.replicas} needs {spec.replicas + 1} tapes per hot block, "
            f"jukebox has {tape_count}"
        )

    builders = [_TapeBuilder(tape_id, slots_per_tape) for tape_id in range(tape_count)]
    if spec.layout is Layout.HORIZONTAL:
        _assign_horizontal(builders, spec, n_logical, n_hot)
    else:
        _assign_vertical(builders, spec, n_logical, n_hot, slots_per_tape)

    placements: Dict[int, List[Replica]] = {block_id: [] for block_id in range(n_logical)}
    for builder in builders:
        for block_id, replica in builder.layout(spec.start_position, spec.block_mb).items():
            placements[block_id].append(replica)
    return BlockCatalog(
        block_mb=spec.block_mb,
        n_hot=n_hot,
        replicas_by_block=[placements[block_id] for block_id in range(n_logical)],
    )


def _assign_horizontal(
    builders: List[_TapeBuilder],
    spec: PlacementSpec,
    n_logical: int,
    n_hot: int,
) -> None:
    """Spread hot copies and cold blocks round-robin over all tapes."""
    tape_count = len(builders)
    for block_id in range(n_hot):
        for copy in range(spec.replicas + 1):
            tape_id = (block_id + copy) % tape_count
            builders[tape_id].hot_blocks.append(block_id)
    _assign_cold(builders, first_cold=n_hot, n_logical=n_logical, pack=spec.pack_cold)


def _assign_vertical(
    builders: List[_TapeBuilder],
    spec: PlacementSpec,
    n_logical: int,
    n_hot: int,
    slots_per_tape: int,
) -> None:
    """Dedicate leading tapes to hot primaries; replicas round-robin on the rest."""
    tape_count = len(builders)
    hot_tape_count = math.ceil(n_hot / slots_per_tape) if n_hot else 0
    replica_tapes = tape_count - hot_tape_count
    if n_hot and spec.replicas > replica_tapes:
        raise ValueError(
            f"vertical layout: NR={spec.replicas} replicas need {spec.replicas} "
            f"non-hot tapes, only {replica_tapes} available"
        )
    for block_id in range(n_hot):
        builders[block_id // slots_per_tape].hot_blocks.append(block_id)
    for block_id in range(n_hot):
        for copy in range(spec.replicas):
            tape_id = hot_tape_count + (block_id + copy) % replica_tapes
            builders[tape_id].hot_blocks.append(block_id)
    # Cold data prefers the non-hot tapes (the layout's point is to keep
    # the hot tape hot), but spills onto the hot tapes' spare slots when
    # replication leaves the non-hot tapes without enough room.
    cold_order = builders[hot_tape_count:] + builders[:hot_tape_count]
    _assign_cold(cold_order, first_cold=n_hot, n_logical=n_logical, pack=spec.pack_cold)


def _assign_cold(
    builders: List[_TapeBuilder],
    first_cold: int,
    n_logical: int,
    pack: bool,
) -> None:
    """Distribute cold blocks over ``builders`` (round-robin or packed)."""
    cold_ids = list(range(first_cold, n_logical))
    if pack:
        index = 0
        for builder in builders:
            take = min(builder.free, len(cold_ids) - index)
            builder.cold_blocks.extend(cold_ids[index : index + take])
            index += take
        if index != len(cold_ids):
            raise ValueError("cold data exceeds remaining capacity")
        return
    tape_cursor = 0
    tape_count = len(builders)
    for block_id in cold_ids:
        for _attempt in range(tape_count):
            builder = builders[tape_cursor % tape_count]
            tape_cursor += 1
            if builder.free > 0:
                builder.cold_blocks.append(block_id)
                break
        else:
            raise ValueError("cold data exceeds remaining capacity")
