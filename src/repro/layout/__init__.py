"""Data placement and replication substrate."""

from .catalog import BlockCatalog, Replica
from .lifecycle import LifecyclePlanner, LifecycleStage, StagePlan
from .placement import (
    Layout,
    PlacementSpec,
    build_catalog,
    expansion_factor,
    logical_block_budget,
)
from .validate import LayoutError, validate_catalog

__all__ = [
    "BlockCatalog",
    "LifecyclePlanner",
    "LifecycleStage",
    "StagePlan",
    "Layout",
    "LayoutError",
    "PlacementSpec",
    "Replica",
    "build_catalog",
    "expansion_factor",
    "logical_block_budget",
    "validate_catalog",
]
