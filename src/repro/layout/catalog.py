"""Block catalog: the mapping from logical blocks to physical replicas.

The unit of storage and I/O is a fixed-size logical block.  A logical
block may be replicated on multiple tapes with at most one copy per tape
(paper Section 2.2).  The catalog is immutable once built and is shared
by the workload generator (to draw block ids) and the schedulers (to
enumerate a request's candidate replicas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Replica:
    """One physical copy of a logical block."""

    tape_id: int
    position_mb: float


class BlockCatalog:
    """Immutable logical-block -> replica map with per-tape indexes.

    Logical block ids are dense integers ``0..n_blocks-1``; ids below
    ``n_hot`` are the hot blocks (the builder arranges this).
    """

    def __init__(
        self,
        block_mb: float,
        n_hot: int,
        replicas_by_block: Sequence[Sequence[Replica]],
    ) -> None:
        if block_mb <= 0:
            raise ValueError(f"block_mb must be positive, got {block_mb!r}")
        if n_hot < 0 or n_hot > len(replicas_by_block):
            raise ValueError(
                f"n_hot={n_hot} outside [0, {len(replicas_by_block)}]"
            )
        self._block_mb = float(block_mb)
        self._n_hot = n_hot
        self._replicas: Tuple[Tuple[Replica, ...], ...] = tuple(
            tuple(sorted(replica_list)) for replica_list in replicas_by_block
        )
        for block_id, replica_list in enumerate(self._replicas):
            if not replica_list:
                raise ValueError(f"logical block {block_id} has no replicas")
            tapes = [replica.tape_id for replica in replica_list]
            if len(set(tapes)) != len(tapes):
                raise ValueError(
                    f"logical block {block_id} has multiple copies on one tape"
                )
        by_tape: Dict[int, List[Tuple[float, int]]] = {}
        for block_id, replica_list in enumerate(self._replicas):
            for replica in replica_list:
                by_tape.setdefault(replica.tape_id, []).append(
                    (replica.position_mb, block_id)
                )
        self._by_tape: Dict[int, Tuple[Tuple[float, int], ...]] = {
            tape_id: tuple(sorted(entries)) for tape_id, entries in by_tape.items()
        }

    # ------------------------------------------------------------------
    @property
    def block_mb(self) -> float:
        """Logical block size in MB."""
        return self._block_mb

    @property
    def n_blocks(self) -> int:
        """Number of logical blocks."""
        return len(self._replicas)

    @property
    def n_hot(self) -> int:
        """Number of hot logical blocks (ids ``0..n_hot-1``)."""
        return self._n_hot

    @property
    def n_cold(self) -> int:
        """Number of cold logical blocks (ids ``n_hot..n_blocks-1``)."""
        return self.n_blocks - self._n_hot

    def is_hot(self, block_id: int) -> bool:
        """True when ``block_id`` is a hot block."""
        return 0 <= block_id < self._n_hot

    def replicas_of(self, block_id: int) -> Tuple[Replica, ...]:
        """All physical copies of ``block_id`` (sorted by tape then position)."""
        return self._replicas[block_id]

    def replica_on(self, block_id: int, tape_id: int) -> Replica:
        """The copy of ``block_id`` on ``tape_id``; raises ``KeyError`` if none."""
        for replica in self._replicas[block_id]:
            if replica.tape_id == tape_id:
                return replica
        raise KeyError(f"block {block_id} has no copy on tape {tape_id}")

    def has_replica_on(self, block_id: int, tape_id: int) -> bool:
        """True when ``block_id`` has a copy on ``tape_id``."""
        return any(replica.tape_id == tape_id for replica in self._replicas[block_id])

    def replication_degree(self, block_id: int) -> int:
        """Number of physical copies of ``block_id``."""
        return len(self._replicas[block_id])

    # ------------------------------------------------------------------
    @property
    def tape_ids(self) -> Iterable[int]:
        """Tape ids that hold at least one block."""
        return self._by_tape.keys()

    def tape_contents(self, tape_id: int) -> Tuple[Tuple[float, int], ...]:
        """Sorted ``(position_mb, block_id)`` pairs stored on ``tape_id``."""
        return self._by_tape.get(tape_id, ())

    def blocks_on_tape(self, tape_id: int) -> List[int]:
        """Logical block ids stored on ``tape_id``, in position order."""
        return [block_id for _pos, block_id in self.tape_contents(tape_id)]

    def total_copies(self) -> int:
        """Total physical copies across all tapes."""
        return sum(len(replica_list) for replica_list in self._replicas)

    def as_mapping(self) -> Mapping[int, Tuple[Replica, ...]]:
        """Read-only view ``block_id -> replicas`` (for reports/tests)."""
        return {block_id: self._replicas[block_id] for block_id in range(self.n_blocks)}
