"""Layout invariant checks.

These are the structural facts every catalog must satisfy (paper
Section 2.2); tests and the experiment runner call them defensively.
"""

from __future__ import annotations

from typing import List

from .catalog import BlockCatalog


class LayoutError(ValueError):
    """A catalog violates a placement invariant."""


def validate_catalog(
    catalog: BlockCatalog,
    tape_count: int,
    capacity_mb: float,
    expected_replicas: int,
) -> None:
    """Raise :class:`LayoutError` unless all placement invariants hold.

    Checks: replica counts (hot blocks have ``1 + NR`` copies, cold blocks
    exactly one), at most one copy per tape (enforced structurally by the
    catalog, re-checked here), non-overlapping extents within each tape,
    and all extents within tape capacity.
    """
    for block_id in range(catalog.n_blocks):
        degree = catalog.replication_degree(block_id)
        expected = 1 + expected_replicas if catalog.is_hot(block_id) else 1
        if degree != expected:
            kind = "hot" if catalog.is_hot(block_id) else "cold"
            raise LayoutError(
                f"{kind} block {block_id} has {degree} copies, expected {expected}"
            )
        tapes = [replica.tape_id for replica in catalog.replicas_of(block_id)]
        if len(set(tapes)) != len(tapes):
            raise LayoutError(f"block {block_id} has two copies on one tape")
        for replica in catalog.replicas_of(block_id):
            if not 0 <= replica.tape_id < tape_count:
                raise LayoutError(
                    f"block {block_id} placed on nonexistent tape {replica.tape_id}"
                )

    for tape_id in range(tape_count):
        extents: List[tuple] = [
            (position, position + catalog.block_mb)
            for position, _block in catalog.tape_contents(tape_id)
        ]
        extents.sort()
        for (start, end) in extents:
            if start < 0 or end > capacity_mb:
                raise LayoutError(
                    f"tape {tape_id}: extent [{start}, {end}) outside capacity "
                    f"{capacity_mb} MB"
                )
        for (_s1, e1), (s2, _e2) in zip(extents, extents[1:]):
            if s2 < e1:
                raise LayoutError(f"tape {tape_id}: overlapping extents at {s2} MB")
