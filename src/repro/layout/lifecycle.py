"""The paper's jukebox-filling lifecycle (Section 4.8, final paragraphs).

The paper closes its evaluation with an operational recommendation for
gradually filling a jukebox:

1. **Filling** — dedicate one tape to the hottest ~10% of data (the
   vertical layout is preferred); fill the other tapes only part way
   with original data, and *append replicas of hot data to the tape
   ends* when convenient.  The spare capacity improves performance
   "for free".
2. **Nearing overflow** — overwrite the dedicated hot tape with base
   data: a horizontal layout with full replication is nearly as good
   as a vertical one, so little performance is lost.
3. **Recapture** — reclaim the space the replicas occupy at the tape
   ends by overwriting them with base data, degrading gracefully to
   the plain unreplicated layout (hot data at tape beginnings).

:class:`LifecyclePlanner` turns a data volume and hot fraction into the
concrete :class:`~repro.layout.placement.PlacementSpec` for each stage,
choosing the replica count that still fits, so the paper's
recommendation is executable end to end (see
``benchmarks/bench_lifecycle.py`` for the performance at each stage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .placement import Layout, PlacementSpec


class LifecycleStage(enum.Enum):
    """Stages of the paper's filling recommendation."""

    FILLING = "filling"
    NEAR_OVERFLOW = "near-overflow"
    RECAPTURED = "recaptured"


@dataclass(frozen=True)
class StagePlan:
    """The layout chosen for one lifecycle stage."""

    stage: LifecycleStage
    spec: PlacementSpec
    #: Fraction of physical slots occupied by base (non-replica) data.
    base_utilization: float
    #: Replicas per hot block the plan managed to fit.
    replicas: int


class LifecyclePlanner:
    """Plans layouts as a jukebox fills (paper Section 4.8)."""

    def __init__(
        self,
        tape_count: int,
        capacity_mb: float,
        block_mb: float = 16.0,
        percent_hot: float = 10.0,
    ) -> None:
        if tape_count < 2:
            raise ValueError("a lifecycle needs at least 2 tapes")
        if not 0.0 < percent_hot <= 100.0:
            raise ValueError(f"percent_hot must be in (0, 100], got {percent_hot!r}")
        self.tape_count = tape_count
        self.capacity_mb = capacity_mb
        self.block_mb = block_mb
        self.percent_hot = percent_hot
        self.slots_per_tape = int(capacity_mb // block_mb)
        self.total_slots = tape_count * self.slots_per_tape

    # ------------------------------------------------------------------
    def max_replicas_for(self, data_blocks: int) -> int:
        """Most replicas per hot block that fit beside ``data_blocks``.

        Constrained by spare capacity (``NR * n_hot`` replica slots must
        fit) and by the placement rule of one copy per tape
        (``NR + 1 <= tape_count``).
        """
        if data_blocks <= 0:
            raise ValueError(f"data_blocks must be positive, got {data_blocks!r}")
        if data_blocks > self.total_slots:
            raise ValueError(
                f"{data_blocks} blocks exceed the jukebox's {self.total_slots} slots"
            )
        n_hot = max(1, round(data_blocks * self.percent_hot / 100.0))
        spare = self.total_slots - data_blocks
        by_capacity = spare // n_hot
        by_tapes = self.tape_count - 1
        return max(0, min(by_capacity, by_tapes))

    def stage_of(self, data_blocks: int) -> LifecycleStage:
        """Which lifecycle stage a data volume lands in.

        Filling while spare capacity still allows at least one replica
        of every hot block; near-overflow once replicas no longer fit
        but some spare slots remain; recaptured when the jukebox is
        completely full (every replica slot overwritten with base data).
        """
        if self.max_replicas_for(data_blocks) >= 1:
            return LifecycleStage.FILLING
        if data_blocks < self.total_slots:
            return LifecycleStage.NEAR_OVERFLOW
        return LifecycleStage.RECAPTURED

    def plan(self, data_blocks: int) -> StagePlan:
        """The paper-recommended layout for ``data_blocks`` of base data."""
        stage = self.stage_of(data_blocks)
        base_utilization = data_blocks / self.total_slots
        if stage is LifecycleStage.FILLING:
            replicas = self.max_replicas_for(data_blocks)
            spec = PlacementSpec(
                layout=Layout.VERTICAL,       # hottest data on one tape
                percent_hot=self.percent_hot,
                replicas=replicas,
                start_position=1.0,           # replicas appended at tape ends
                block_mb=self.block_mb,
            )
            return StagePlan(stage, spec, base_utilization, replicas)
        if stage is LifecycleStage.NEAR_OVERFLOW:
            # Hot tape overwritten with base data: horizontal layout,
            # keep whatever replication still fits (usually none).
            replicas = self.max_replicas_for(data_blocks)
            spec = PlacementSpec(
                layout=Layout.HORIZONTAL,
                percent_hot=self.percent_hot,
                replicas=replicas,
                start_position=1.0 if replicas else 0.0,
                block_mb=self.block_mb,
            )
            return StagePlan(stage, spec, base_utilization, replicas)
        # Recaptured: plain unreplicated layout, hot data at beginnings.
        spec = PlacementSpec(
            layout=Layout.HORIZONTAL,
            percent_hot=self.percent_hot,
            replicas=0,
            start_position=0.0,
            block_mb=self.block_mb,
        )
        return StagePlan(stage, spec, base_utilization, 0)

    def schedule(self, fill_fractions) -> list:
        """Plans for a sequence of fill levels (fractions of capacity)."""
        plans = []
        for fraction in fill_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"fill fraction {fraction!r} outside (0, 1]")
            data_blocks = max(1, int(fraction * self.total_slots))
            plans.append(self.plan(data_blocks))
        return plans
