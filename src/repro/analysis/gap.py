"""Optimality-gap analysis: every heuristic vs the exact LTSP baseline.

The paper compares its scheduler families only against each other, so it
cannot say how much headroom a heuristic leaves on the table.  With the
``exact-batch`` scheduler (see :mod:`repro.core.exact`) as the baseline,
this module measures that headroom directly: for each scenario in a
matrix spanning the paper's operating regimes (queue sweep, replication,
faults, QoS, serpentine drives, multi-drive jukeboxes), run every
scheduler under identical workloads and report the **gap ratio**

    ratio = mean_response(scheduler) / mean_response(exact baseline)

A ratio of 1.25 means the heuristic's mean response time is 25% above
the optimality baseline in that regime; the exact scheduler itself is
1.0 by construction.  All runs compile to one
:meth:`repro.campaign.Campaign.submit` call, so gap reports are cached,
parallelizable, and resumable like every other figure.

Methodology follows the paper's Figure 4 closed-loop setup (hot/cold
workload, warm-up discard, steady-state means); see docs/PAPER_MAP.md.
Scenario horizons default to 200,000 simulated seconds — long enough
that closed-loop trajectory noise (different schedulers see different
arrival interleavings after their first divergent decision) is small
against the real scheduling differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments.config import ExperimentConfig
from ..faults import FaultConfig
from ..layout.placement import Layout
from ..qos import QoSConfig

#: The baseline every ratio is measured against.
DEFAULT_BASELINE = "exact-batch"

#: The paper's four scheduler families (best tape-selection policy each).
PAPER_HEURISTICS: Tuple[str, ...] = (
    "fifo",
    "static-max-bandwidth",
    "dynamic-max-bandwidth",
    "envelope-max-bandwidth",
)

#: The LTSP approximation policies (companion baselines, not paper families).
APPROX_POLICIES: Tuple[str, ...] = (
    "approx-greedy-cost",
    "approx-best-pass",
)

#: Default simulated horizon for gap scenarios (seconds).
GAP_HORIZON_S = 200_000.0


@dataclass(frozen=True)
class GapScenario:
    """One cell of the scenario matrix: a name plus its base config.

    ``config.scheduler`` is ignored — :func:`compute_gap` swaps in each
    scheduler under test via :meth:`ExperimentConfig.with_`.
    """

    key: str
    description: str
    config: ExperimentConfig

    def supports(self, scheduler: str) -> bool:
        """Whether ``scheduler`` can run in this scenario.

        Multi-drive service rejects the envelope family (extension
        passes assume one head; see repro.service.multidrive), so
        envelope schedulers are skipped on ``drive_count > 1``.
        """
        if self.config.drive_count > 1 and scheduler.startswith("envelope"):
            return False
        return True


def gap_scenarios(
    horizon_s: float = GAP_HORIZON_S,
    queue_lengths: Sequence[int] = (20, 60, 100),
) -> Tuple[GapScenario, ...]:
    """The default scenario matrix: the paper's regimes plus extensions.

    Queue sweep (closed-loop intensity), replication (NR-4 vertical at
    SP-1, the paper's best placement), faults (media errors with replica
    failover), QoS (starvation guard active), serpentine drives, and a
    two-drive jukebox.
    """

    def base(**overrides) -> ExperimentConfig:
        return ExperimentConfig(horizon_s=horizon_s, **overrides)

    scenarios = [
        GapScenario(
            key=f"q{queue_length}",
            description=f"closed queue Q-{queue_length}, paper base point",
            config=base(queue_length=queue_length),
        )
        for queue_length in queue_lengths
    ]
    scenarios += [
        GapScenario(
            key="nr4-vertical",
            description="NR-4 vertical replication at SP-1",
            config=base(replicas=4, layout=Layout.VERTICAL, start_position=1.0),
        ),
        GapScenario(
            key="faults",
            description="media errors (1%) with NR-2 failover",
            config=base(
                replicas=2, faults=FaultConfig(media_error_rate=0.01, seed=7)
            ),
        ),
        GapScenario(
            key="qos-guard",
            description="starvation guard forcing aged requests",
            config=base(qos=QoSConfig(starvation_age_s=3600.0)),
        ),
        GapScenario(
            key="serpentine",
            description="serpentine (DLT-style) drive technology",
            config=base(drive_technology="serpentine"),
        ),
        GapScenario(
            key="multidrive",
            description="three drives per jukebox (envelope excluded)",
            config=base(drive_count=3),
        ),
    ]
    return tuple(scenarios)


@dataclass(frozen=True)
class GapCell:
    """One scheduler's result in one scenario."""

    scheduler: str
    mean_response_s: float
    ratio: float


@dataclass(frozen=True)
class GapRow:
    """One scenario: the baseline's mean response plus every cell."""

    scenario: GapScenario
    baseline_mean_s: float
    cells: Tuple[GapCell, ...]

    def cell(self, scheduler: str) -> Optional[GapCell]:
        """The cell for ``scheduler``, or ``None`` if it was skipped."""
        for cell in self.cells:
            if cell.scheduler == scheduler:
                return cell
        return None


@dataclass(frozen=True)
class GapReport:
    """Gap ratios for every (scenario, scheduler) pair that ran."""

    baseline: str
    schedulers: Tuple[str, ...]
    rows: Tuple[GapRow, ...]

    def ratio(self, scenario_key: str, scheduler: str) -> float:
        """The gap ratio for one (scenario, scheduler) pair."""
        for row in self.rows:
            if row.scenario.key == scenario_key:
                cell = row.cell(scheduler)
                if cell is None:
                    raise KeyError(
                        f"{scheduler!r} was skipped in scenario {scenario_key!r}"
                    )
                return cell.ratio
        raise KeyError(f"unknown scenario {scenario_key!r}")

    def worst_ratio(self, scheduler: str) -> float:
        """The largest (worst) gap ratio ``scheduler`` shows anywhere."""
        ratios = [
            cell.ratio
            for row in self.rows
            for cell in row.cells
            if cell.scheduler == scheduler
        ]
        if not ratios:
            raise KeyError(f"no cells for scheduler {scheduler!r}")
        return max(ratios)

    def mean_ratio(self, scheduler: str) -> float:
        """The mean gap ratio across the scenarios ``scheduler`` ran in."""
        ratios = [
            cell.ratio
            for row in self.rows
            for cell in row.cells
            if cell.scheduler == scheduler
        ]
        if not ratios:
            raise KeyError(f"no cells for scheduler {scheduler!r}")
        return sum(ratios) / len(ratios)


def gap_configs(
    scenarios: Sequence[GapScenario],
    schedulers: Sequence[str],
    baseline: str = DEFAULT_BASELINE,
) -> List[ExperimentConfig]:
    """The configs one gap computation submits, in report order."""
    configs: List[ExperimentConfig] = []
    for scenario in scenarios:
        configs.append(scenario.config.with_(scheduler=baseline))
        for scheduler in schedulers:
            if scheduler != baseline and scenario.supports(scheduler):
                configs.append(scenario.config.with_(scheduler=scheduler))
    return configs


def compute_gap(
    scenarios: Optional[Sequence[GapScenario]] = None,
    schedulers: Optional[Sequence[str]] = None,
    baseline: str = DEFAULT_BASELINE,
    campaign=None,
) -> GapReport:
    """Run the scenario matrix and return per-scenario gap ratios.

    All points compile to **one** campaign submission: pass
    ``campaign=Campaign(jobs=8, cache_dir=...)`` to parallelize and to
    make the report resumable (finished points come from the cache).
    """
    if scenarios is None:
        scenarios = gap_scenarios()
    if schedulers is None:
        # Default to the paper's four heuristic families — the report's
        # question is how far *the paper's* schedulers sit from optimal.
        # The LTSP approximation policies (APPROX_POLICIES) track the
        # baseline within closed-loop trajectory noise (±0.5%), so their
        # ratios can dip fractionally below 1.0; include them explicitly
        # via ``schedulers=PAPER_HEURISTICS + APPROX_POLICIES``.
        schedulers = PAPER_HEURISTICS
    schedulers = tuple(dict.fromkeys(schedulers))

    # Lazy: repro.experiments.figures imports repro.analysis, so the
    # campaign shim cannot be a module-level import here.
    from ..experiments.sweeps import _campaign_or_default

    submission = _campaign_or_default(campaign).submit(
        gap_configs(scenarios, schedulers, baseline)
    )

    rows: List[GapRow] = []
    for scenario in scenarios:
        baseline_result = submission.require(
            scenario.config.with_(scheduler=baseline)
        )
        baseline_mean = baseline_result.report.mean_response_s
        cells: List[GapCell] = []
        for scheduler in schedulers:
            if not scenario.supports(scheduler):
                continue
            if scheduler == baseline:
                mean = baseline_mean
            else:
                result = submission.require(
                    scenario.config.with_(scheduler=scheduler)
                )
                mean = result.report.mean_response_s
            cells.append(
                GapCell(
                    scheduler=scheduler,
                    mean_response_s=mean,
                    ratio=mean / baseline_mean if baseline_mean else float("inf"),
                )
            )
        rows.append(
            GapRow(
                scenario=scenario,
                baseline_mean_s=baseline_mean,
                cells=tuple(cells),
            )
        )
    return GapReport(baseline=baseline, schedulers=schedulers, rows=tuple(rows))
