"""Analytic results: cost-performance model and formal-bound helpers."""

from .approximations import (
    SweepEstimate,
    estimate_closed_throughput,
    estimate_sweep,
    expected_max_position,
    requests_for_target_throughput,
)
from .bounds import (
    extension_round_trip_cost,
    harmonic,
    optimal_extension_cost,
    theorem2_bound,
)
from .costperf import (
    cost_performance_curve,
    cost_performance_ratio,
    effective_queue_length,
    expansion_table,
)
from .gap import (
    APPROX_POLICIES,
    DEFAULT_BASELINE,
    GAP_HORIZON_S,
    GapCell,
    GapReport,
    GapRow,
    GapScenario,
    PAPER_HEURISTICS,
    compute_gap,
    gap_configs,
    gap_scenarios,
)

__all__ = [
    "APPROX_POLICIES",
    "DEFAULT_BASELINE",
    "GAP_HORIZON_S",
    "GapCell",
    "GapReport",
    "GapRow",
    "GapScenario",
    "PAPER_HEURISTICS",
    "SweepEstimate",
    "compute_gap",
    "gap_configs",
    "gap_scenarios",
    "cost_performance_curve",
    "estimate_closed_throughput",
    "estimate_sweep",
    "expected_max_position",
    "requests_for_target_throughput",
    "cost_performance_ratio",
    "effective_queue_length",
    "expansion_table",
    "extension_round_trip_cost",
    "harmonic",
    "optimal_extension_cost",
    "theorem2_bound",
]
