"""Formal-results helpers (paper Section 3.3).

Theorem 1 states NP-hardness of optimally extending the post-absorption
schedule ``S1`` to cover all requests (reduction from minimum set cover
over replica placements); nothing executable follows from it, but its
practical consequence — we should not expect an optimal polynomial
algorithm — motivates the greedy envelope extension.

Theorem 2 bounds the envelope extension's cost over the optimal
extension:

    C(S2) - C(S1) <= H_n * (C(S2_opt) - C(S1))
                     - n * (H_n - 1) * (C_s + C_r) + n * C_d

where ``C_s`` is the short-forward-locate startup, ``C_r`` the block
transfer time, ``C_d`` the long/short startup gap, and ``H_n`` the n-th
harmonic number.  This module computes the bound and, for small
instances, the brute-force optimal extension cost the bound refers to,
so property tests can check the theorem empirically.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from ..layout.catalog import Replica
from ..tape.timing import DriveTimingModel


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n`` (``H_0 = 0``)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n!r}")
    return sum(1.0 / i for i in range(1, n + 1))


def theorem2_bound(
    n: int,
    optimal_extension_cost: float,
    timing: DriveTimingModel,
    block_mb: float,
) -> float:
    """Right-hand side of Theorem 2 for ``n`` unscheduled requests."""
    h_n = harmonic(n)
    c_s = timing.short_forward_startup_s
    c_r = timing.block_transfer_s(block_mb)
    c_d = timing.long_short_startup_gap_s
    return h_n * optimal_extension_cost - n * (h_n - 1.0) * (c_s + c_r) + n * c_d


def extension_round_trip_cost(
    timing: DriveTimingModel,
    envelope_mb: float,
    positions: Sequence[float],
    block_mb: float,
    charge_switch: bool,
) -> float:
    """Cost of extending one tape's envelope through ``positions``.

    Matches the major rescheduler's step-3 definition: locate and read
    from the envelope through the sorted positions, then locate back to
    the envelope, plus the tape switch overhead when applicable.
    """
    cost = timing.switch() if charge_switch else 0.0
    head = envelope_mb
    startup = True
    for position in sorted(positions):
        # Same guard as ExtensionCostTracker.extend: a position equal to
        # the previous one (distinct blocks co-located, or a re-read) is
        # a zero-distance read, not an error.
        if position < head - block_mb:
            raise ValueError(f"position {position} inside envelope {envelope_mb}")
        distance = position - head
        if distance > 0:
            cost += timing.locate_forward(distance)
            startup = True
        cost += timing.read(block_mb, startup=startup)
        startup = False
        head = position + block_mb
    if positions:
        cost += timing.locate_reverse(
            head - envelope_mb, lands_on_bot=(envelope_mb == 0)
        )
    return cost


def optimal_extension_cost(
    timing: DriveTimingModel,
    envelopes: Dict[int, float],
    request_replicas: Sequence[Sequence[Replica]],
    block_mb: float,
    mounted_id: int = None,
) -> float:
    """Brute-force optimal cost of covering all requests (tiny instances).

    Each request must be satisfied by one of its replicas; given an
    assignment, the extension cost is the sum of per-tape round trips
    through the assigned positions beyond each tape's envelope.  The
    search enumerates every assignment — exponential, usable only for
    the small cases in tests (the problem is NP-hard, Theorem 1).
    """
    if not request_replicas:
        return 0.0
    best = float("inf")
    for assignment in itertools.product(*request_replicas):
        per_tape: Dict[int, List[float]] = {}
        for replica in assignment:
            per_tape.setdefault(replica.tape_id, []).append(replica.position_mb)
        cost = 0.0
        for tape_id, positions in per_tape.items():
            envelope = envelopes.get(tape_id, 0.0)
            outside = [position for position in positions if position >= envelope]
            charge_switch = envelope == 0.0 and tape_id != mounted_id
            cost += extension_round_trip_cost(
                timing, envelope, outside, block_mb, charge_switch
            )
        best = min(best, cost)
    return best
