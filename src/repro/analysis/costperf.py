"""Cost-performance analysis of replication (paper Section 4.8).

Replication expands storage by ``E = 1 + NR * PH / 100``; a farm of
jukeboxes storing the same data therefore needs ``E`` times more
jukeboxes, and each jukebox sees ``1/E`` of the request workload.  The
cost-performance ratio of a replicated scheme versus the non-replicated
baseline reduces to the ratio of per-jukebox throughputs at the
accordingly scaled queue lengths.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..layout.placement import Layout, expansion_factor


def effective_queue_length(base_queue_length: int, expansion: float) -> int:
    """Per-jukebox queue length after spreading load over ``E`` jukeboxes."""
    if base_queue_length <= 0:
        raise ValueError(
            f"base_queue_length must be positive, got {base_queue_length!r}"
        )
    if expansion < 1.0:
        raise ValueError(f"expansion factor must be >= 1, got {expansion!r}")
    return max(1, round(base_queue_length / expansion))


def cost_performance_ratio(
    replicated_throughput: float, baseline_throughput: float
) -> float:
    """Ratio of per-jukebox throughputs (> 1 means replication pays off)."""
    if baseline_throughput <= 0:
        raise ValueError("baseline throughput must be positive")
    return replicated_throughput / baseline_throughput


def expansion_table(
    replica_counts: Sequence[int], percent_hot_values: Sequence[float]
) -> Dict[float, List[Tuple[int, float]]]:
    """Figure 10(a): ``PH -> [(NR, E)]`` rows of the expansion factor."""
    return {
        percent_hot: [
            (replicas, expansion_factor(replicas, percent_hot))
            for replicas in replica_counts
        ]
        for percent_hot in percent_hot_values
    }


def cost_performance_curve(
    horizon_s: float,
    percent_requests_hot: float,
    replica_counts: Sequence[int],
    base_queue_length: int = 60,
    percent_hot: float = 10.0,
    tape_count: int = 10,
    scheduler: str = "envelope-max-bandwidth",
    seed: int = 42,
    campaign=None,
) -> List[Tuple[int, float]]:
    """Figure 10(b): ``[(NR, cost-performance ratio)]`` for one skew.

    Runs the non-replicated baseline at ``base_queue_length`` and each
    replicated scheme at ``round(base / E)``, comparing per-jukebox
    throughput.  Layout follows the paper: vertical, replicas at SP-1.0.
    The baseline and every replicated point go out as one campaign
    submission; ``campaign=None`` runs them serially as before.
    """
    from ..experiments.config import ExperimentConfig
    from ..experiments.sweeps import _campaign_or_default

    def point(replicas: int, queue_length: int) -> ExperimentConfig:
        return ExperimentConfig(
            scheduler=scheduler,
            layout=Layout.VERTICAL,
            percent_hot=percent_hot,
            percent_requests_hot=percent_requests_hot,
            replicas=replicas,
            start_position=1.0 if replicas else 0.0,
            tape_count=tape_count,
            queue_length=queue_length,
            horizon_s=horizon_s,
            seed=seed,
        )

    baseline_config = point(0, base_queue_length)
    replicated = {
        replicas: point(
            replicas,
            effective_queue_length(
                base_queue_length, expansion_factor(replicas, percent_hot)
            ),
        )
        for replicas in replica_counts
        if replicas > 0
    }
    submission = _campaign_or_default(campaign).submit(
        [baseline_config, *replicated.values()]
    )
    baseline = submission.require(baseline_config).throughput_kb_s
    curve: List[Tuple[int, float]] = []
    for replicas in replica_counts:
        if replicas == 0:
            curve.append((0, 1.0))
            continue
        curve.append(
            (
                replicas,
                cost_performance_ratio(
                    submission.require(replicated[replicas]).throughput_kb_s, baseline
                ),
            )
        )
    return curve
