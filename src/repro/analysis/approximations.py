"""Closed-form performance approximations for sweep-based scheduling.

These back-of-envelope formulas predict sweep duration and steady-state
throughput for a tape holding uniformly distributed requested blocks.
They serve two purposes: sanity-checking the simulator (tests compare
them against Monte-Carlo sweeps of the exact cost model) and quick
capacity estimation without running a simulation — e.g. "how many
requests per sweep before a jukebox sustains 250 KB/s?".

Model: ``k`` requested blocks of size ``B`` MB uniformly placed on a
tape of ``C`` MB, swept from position 0.  Order statistics give the
expected farthest block start at ``(C - B) * k / (k + 1)``; each of the
``k`` locates pays a startup (long-segment, since typical gaps far
exceed the 28 MB threshold) and the gap distance at the long-segment
rate; each read pays the transfer plus the after-forward-locate
startup.  The sweep ends with a rewind and a switch when the drive
moves on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tape.timing import DriveTimingModel

MB_BYTES = 1 << 20


def expected_max_position(k: int, extent_mb: float) -> float:
    """Expected maximum of ``k`` uniform block starts in ``[0, extent]``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k!r}")
    if k == 0:
        return 0.0
    return extent_mb * k / (k + 1)


@dataclass(frozen=True)
class SweepEstimate:
    """Predicted breakdown of one sweep plus its trailing switch."""

    locate_s: float
    read_s: float
    rewind_s: float
    switch_s: float
    blocks: int
    block_mb: float

    @property
    def service_s(self) -> float:
        """Sweep execution time (locate + read), excluding the switch."""
        return self.locate_s + self.read_s

    @property
    def cycle_s(self) -> float:
        """Full cycle: sweep plus rewind and tape switch."""
        return self.service_s + self.rewind_s + self.switch_s

    @property
    def throughput_bytes_s(self) -> float:
        """Steady-state bytes/s if every cycle looks like this one."""
        if self.cycle_s <= 0:
            return 0.0
        return self.blocks * self.block_mb * MB_BYTES / self.cycle_s

    @property
    def seconds_per_request(self) -> float:
        """Mean service seconds consumed per completed request."""
        if self.blocks == 0:
            return 0.0
        return self.cycle_s / self.blocks


def estimate_sweep(
    timing: DriveTimingModel,
    k: int,
    capacity_mb: float,
    block_mb: float,
) -> SweepEstimate:
    """Expected cost of sweeping ``k`` uniform blocks from position 0."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k!r}")
    if k == 0:
        return SweepEstimate(0.0, 0.0, 0.0, timing.switch(), 0, block_mb)
    extent = capacity_mb - block_mb
    farthest = expected_max_position(k, extent)
    # Forward travel: k locates covering `farthest` MB minus the data
    # passed while reading (k-1 blocks lie behind the farthest start).
    travel_mb = max(0.0, farthest - (k - 1) * block_mb)
    locate_s = k * timing.forward_long.startup + timing.forward_long.rate * travel_mb
    read_s = k * timing.read(block_mb, startup=True)
    rewind_s = timing.rewind(farthest + block_mb)
    return SweepEstimate(
        locate_s=locate_s,
        read_s=read_s,
        rewind_s=rewind_s,
        switch_s=timing.switch(),
        blocks=k,
        block_mb=block_mb,
    )


def estimate_closed_throughput(
    timing: DriveTimingModel,
    queue_length: int,
    tape_count: int,
    capacity_mb: float,
    block_mb: float,
) -> float:
    """Rough steady-state KB/s for a closed workload, uniform layout.

    A tape's queue drains to ~0 when serviced and refills until its next
    visit, so it averages half of its just-before-service batch; with the
    total outstanding pinned at Q over T tapes, the batch a sweep finds
    is about ``2 Q / T`` (not ``Q / T``).  Placement, skew, and dynamic
    insertion still push the real figure around; expect agreement within
    a few tens of percent (asserted in tests), not decimals.
    """
    if queue_length <= 0 or tape_count <= 0:
        raise ValueError("queue_length and tape_count must be positive")
    per_sweep = max(1, round(2.0 * queue_length / tape_count))
    estimate = estimate_sweep(timing, per_sweep, capacity_mb, block_mb)
    return estimate.throughput_bytes_s / 1024.0


def requests_for_target_throughput(
    timing: DriveTimingModel,
    target_kb_s: float,
    capacity_mb: float,
    block_mb: float,
    max_k: int = 10_000,
) -> int:
    """Smallest per-sweep batch size achieving ``target_kb_s``.

    Raises ``ValueError`` if even ``max_k`` blocks per sweep cannot
    reach the target (it exceeds the drive's asymptotic rate).
    """
    if target_kb_s <= 0:
        raise ValueError(f"target must be positive, got {target_kb_s!r}")
    for k in range(1, max_k + 1):
        estimate = estimate_sweep(timing, k, capacity_mb, block_mb)
        if estimate.throughput_bytes_s / 1024.0 >= target_kb_s:
            return k
    raise ValueError(
        f"target {target_kb_s} KB/s unreachable: exceeds the asymptotic "
        "sweep rate of this drive/blocksize"
    )
