"""Multi-library federation: a fleet of jukeboxes behind a global tier.

The paper optimizes one library; this package scales the replication
idea out one level.  A :class:`FederationConfig` describes N possibly
heterogeneous libraries, a :class:`~repro.federation.replica.
ReplicaRegistry` records which libraries hold a copy of each block, and
a pluggable global policy (:mod:`repro.federation.registry`) routes
each request to one library's local scheduler.  Per-library simulation
reuses the existing service loops unchanged.

Run federations through :func:`repro.api.run` (or directly via
:func:`run_federation`); see docs/FEDERATION.md.
"""

from .config import LibraryConfig, FederationConfig, PLACEMENTS
from .policies import (
    FleetState,
    GlobalPolicy,
    LeastQueuePolicy,
    PassThroughPolicy,
    PredictedServicePolicy,
    RoundRobinPolicy,
)
from .registry import global_policy_names, make_global_policy
from .replica import ReplicaRegistry, apportion
from .report import FederationReport, federation_report_digest
from .runner import (
    FederationResult,
    library_config,
    predicted_service_s,
    route_fleet,
    run_federation,
)

__all__ = [
    "FederationConfig",
    "FederationReport",
    "FederationResult",
    "FleetState",
    "GlobalPolicy",
    "LeastQueuePolicy",
    "LibraryConfig",
    "PassThroughPolicy",
    "PLACEMENTS",
    "PredictedServicePolicy",
    "ReplicaRegistry",
    "RoundRobinPolicy",
    "apportion",
    "federation_report_digest",
    "global_policy_names",
    "library_config",
    "make_global_policy",
    "predicted_service_s",
    "route_fleet",
    "run_federation",
]
