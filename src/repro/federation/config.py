"""Federation configuration: a fleet of heterogeneous tape libraries.

One :class:`FederationConfig` fully determines a federated run the same
way :class:`~repro.experiments.config.ExperimentConfig` determines a
single-library run: the fleet composition (one
:class:`LibraryConfig` per library — drive counts, tape counts,
capacities, and timing models may differ), the data layout and
replication knobs shared with the paper's notation (PH/RH/NR/SP), a
global routing policy, and a replica *placement* mode that is the new
fleet-level axis:

* ``placement="home"`` — the paper's setting scaled out: each hot
  block's NR extra copies live on distinct tapes *inside* its home
  library, so only that library can serve it.
* ``placement="spread"`` — the federation twist: the NR extra copies
  live in NR *other* libraries, so the global tier can route each
  request to any of NR+1 libraries holding a copy.

The two modes store the same total number of copies, which is exactly
the comparison the fleet-level NR sweep figure makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from ..faults.config import FaultConfig
from ..layout.placement import Layout
from ..qos.config import QoSConfig
from .registry import global_policy_names

#: Replica placement modes (the fleet-level analogue of the paper's
#: horizontal/vertical layout axis).
PLACEMENTS = ("home", "spread")

#: Requests drawn by the routing phase to estimate per-library load.
DEFAULT_ROUTING_SAMPLES = 4096


@dataclass(frozen=True)
class LibraryConfig:
    """One library's hardware: the heterogeneity knobs of a fleet."""

    tape_count: int = 10
    capacity_mb: float = 7.0 * 1024.0
    drive_count: int = 1
    drive_speedup: float = 1.0
    #: "helical" (EXB-8505XL) or "serpentine" (DLT-style) timing model.
    drive_technology: str = "helical"
    #: Local scheduler override; ``None`` inherits the federation-wide one.
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tape_count < 1:
            raise ValueError(f"tape_count must be >= 1, got {self.tape_count!r}")
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {self.capacity_mb!r}")
        if self.drive_count < 1:
            raise ValueError(f"drive_count must be >= 1, got {self.drive_count!r}")
        if self.drive_speedup <= 0:
            raise ValueError(
                f"drive_speedup must be positive, got {self.drive_speedup!r}"
            )
        if self.drive_technology not in ("helical", "serpentine"):
            raise ValueError(
                f"drive_technology must be 'helical' or 'serpentine', "
                f"got {self.drive_technology!r}"
            )

    def with_(self, **overrides) -> "LibraryConfig":
        """A copy with ``overrides`` applied."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class FederationConfig:
    """All knobs of one federated run (defaults = a homogeneous pair)."""

    #: The fleet, one entry per library (order is the library index).
    libraries: Tuple[LibraryConfig, ...] = field(
        default_factory=lambda: (LibraryConfig(), LibraryConfig())
    )
    #: Global routing policy name (see :mod:`repro.federation.registry`).
    global_policy: str = "round-robin"
    #: Where each hot block's NR extra copies live: "home" (same
    #: library, distinct tapes) or "spread" (NR other libraries).
    placement: str = "spread"
    #: NR at fleet level — extra copies of each hot block.
    fleet_replicas: int = 0
    #: Federation-wide local scheduler (per-library override on
    #: :attr:`LibraryConfig.scheduler`).
    scheduler: str = "dynamic-max-bandwidth"
    layout: Layout = Layout.HORIZONTAL
    percent_hot: float = 10.0
    percent_requests_hot: float = 40.0
    start_position: float = 0.0
    block_mb: float = 16.0
    pack_cold: bool = False
    #: Fleet-wide closed population, apportioned to libraries by the
    #: routing phase (the federation analogue of the farm's total queue).
    queue_length: int = 60
    horizon_s: float = 1_000_000.0
    warmup_fraction: float = 0.1
    seed: int = 42
    #: Requests the routing phase draws to estimate per-library load.
    routing_samples: int = DEFAULT_ROUTING_SAMPLES
    #: Fault-injection knobs applied to every library (``None`` = off).
    faults: Optional[FaultConfig] = None
    #: Overload-control knobs applied to every library (``None`` = off).
    qos: Optional[QoSConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.libraries, tuple):
            # Accept any sequence for ergonomics; store hashably.
            object.__setattr__(self, "libraries", tuple(self.libraries))
        if len(self.libraries) < 1:
            raise ValueError("a federation needs at least one library")
        for library in self.libraries:
            if not isinstance(library, LibraryConfig):
                raise TypeError(
                    f"libraries entries must be LibraryConfig, got {library!r}"
                )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.global_policy not in global_policy_names():
            raise ValueError(
                f"unknown global policy {self.global_policy!r}; "
                f"known: {', '.join(global_policy_names())}"
            )
        if self.fleet_replicas < 0:
            raise ValueError(
                f"fleet_replicas must be >= 0, got {self.fleet_replicas!r}"
            )
        if self.placement == "spread" and self.fleet_replicas > len(self.libraries) - 1:
            raise ValueError(
                f"spread placement puts each of the {self.fleet_replicas} extra "
                f"copies in a distinct other library, so fleet_replicas must be "
                f"<= {len(self.libraries) - 1} for {len(self.libraries)} libraries"
            )
        if self.placement == "home":
            min_tapes = min(library.tape_count for library in self.libraries)
            if self.fleet_replicas >= min_tapes:
                raise ValueError(
                    f"home placement puts each copy on a distinct tape inside "
                    f"one library, so fleet_replicas must be < the smallest "
                    f"tape_count ({min_tapes}), got {self.fleet_replicas!r}"
                )
        for name in ("percent_hot", "percent_requests_hot"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{name} must be in [0, 100], got {value!r}")
        if not 0.0 <= self.start_position <= 1.0:
            raise ValueError(
                f"start_position must be in [0, 1], got {self.start_position!r}"
            )
        if self.block_mb <= 0:
            raise ValueError(f"block_mb must be positive, got {self.block_mb!r}")
        if self.queue_length < len(self.libraries):
            raise ValueError(
                f"queue_length {self.queue_length} cannot give every one of "
                f"{len(self.libraries)} libraries at least one request"
            )
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s!r}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction!r}"
            )
        if self.routing_samples < 1:
            raise ValueError(
                f"routing_samples must be >= 1, got {self.routing_samples!r}"
            )

    @property
    def size(self) -> int:
        """Number of libraries in the fleet."""
        return len(self.libraries)

    @property
    def is_closed(self) -> bool:
        """Federations run the closed-queueing model (like farms)."""
        return True

    @property
    def warmup_s(self) -> float:
        """Warm-up cutoff in simulated seconds (per library)."""
        return self.horizon_s * self.warmup_fraction

    def with_(self, **overrides) -> "FederationConfig":
        """A copy with ``overrides`` applied (convenience for sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """Compact annotation extending the paper's, e.g.
        ``FED-2 PH-10 RH-40 NR-1/spread round-robin Q-60``."""
        return (
            f"FED-{self.size} PH-{self.percent_hot:g} "
            f"RH-{self.percent_requests_hot:g} "
            f"NR-{self.fleet_replicas}/{self.placement} "
            f"{self.global_policy} Q-{self.queue_length}"
        )


def normalize_libraries(
    libraries: Sequence[LibraryConfig],
) -> Tuple[LibraryConfig, ...]:
    """Coerce a library sequence to the canonical tuple form."""
    return tuple(libraries)
