"""Global routing policies: which library serves each request.

The two-level design follows the global→local scheduler split used by
LLM-serving simulators (vidur's ``BaseGlobalScheduler``, Helix's
``GlobalFlowScheduler``): a policy object at the fleet tier picks one
library per request from the block's holder set, and the chosen
library's *local* scheduler (any registered locally, via
:mod:`repro.core.registry`) orders the physical tape work.

Policies are deliberately cheap and deterministic: they see only the
:class:`FleetState` (routed-so-far counts and static per-library
service-time estimates) and the holder tuple, never the RNG, so a
routing trace is a pure function of the arrival sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class FleetState:
    """What a routing policy may observe about the fleet."""

    #: Requests routed to each library so far (the queue-depth proxy).
    routed: List[int]
    #: Static mean-service-time estimate per library, seconds; derived
    #: from each library's timing model, speedup, and drive count.
    predicted_service_s: Tuple[float, ...] = ()
    #: Monotone per-request counter (drives round-robin rotation).
    sequence: int = field(default=0)

    @property
    def size(self) -> int:
        return len(self.routed)


class GlobalPolicy:
    """Base class: route one request to one library."""

    #: Name under which the policy is registered.
    name = "base"
    #: When True the runner skips the routing phase entirely and falls
    #: back to the farm's even queue split (see PassThroughPolicy).
    bypass_routing = False

    def route(self, block: int, holders: Sequence[int], state: FleetState) -> int:
        raise NotImplementedError


class PassThroughPolicy(GlobalPolicy):
    """No global tier: valid only for a single-library federation.

    The runner bypasses routing and hands the whole closed population
    to library 0 — bit-identical to the farm/single-library path, which
    is exactly what the golden-hash equivalence tests pin.
    """

    name = "pass-through"
    bypass_routing = True

    def route(self, block: int, holders: Sequence[int], state: FleetState) -> int:
        if state.size != 1:  # pragma: no cover - runner validates earlier
            raise ValueError("pass-through requires exactly one library")
        return holders[0]


class RoundRobinPolicy(GlobalPolicy):
    """Rotate over the holder set as requests arrive.

    Oblivious to load and hardware; the baseline every informed policy
    must beat.
    """

    name = "round-robin"

    def route(self, block: int, holders: Sequence[int], state: FleetState) -> int:
        choice = holders[state.sequence % len(holders)]
        state.sequence += 1
        return choice


class LeastQueuePolicy(GlobalPolicy):
    """Send each request to the holder with the fewest routed requests.

    The classic join-the-shortest-queue heuristic at library
    granularity; ties break toward the lowest library index.
    """

    name = "least-queue"

    def route(self, block: int, holders: Sequence[int], state: FleetState) -> int:
        return min(holders, key=lambda index: (state.routed[index], index))


class PredictedServicePolicy(GlobalPolicy):
    """Minimize estimated completion time, not just queue depth.

    Queue depth alone misroutes on heterogeneous fleets: ten requests
    queued at a fast two-drive library may clear sooner than four at a
    slow one.  This policy weights depth by each library's static mean
    service estimate — ``(routed + 1) * predicted_service_s`` — the
    same service-demand shaping Helix's flow scheduler applies per
    replica.  Falls back to least-queue when no estimates are present.
    """

    name = "predicted-service"

    def route(self, block: int, holders: Sequence[int], state: FleetState) -> int:
        if not state.predicted_service_s:
            return min(holders, key=lambda index: (state.routed[index], index))
        return min(
            holders,
            key=lambda index: (
                (state.routed[index] + 1) * state.predicted_service_s[index],
                index,
            ),
        )
