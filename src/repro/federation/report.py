"""Federation-level reporting: per-library reports plus the fleet rollup.

Mirrors :class:`~repro.service.farm.FarmReport` and shares its
aggregation machinery — both delegate to
:class:`~repro.service.rollup.ReportRollup`, the
``MetricRegistry.merge``-based fold — so a farm and a federation report
the same aggregate vocabulary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Tuple

from typing import TYPE_CHECKING

from ..service.metrics import MetricsReport
from ..service.rollup import ReportRollup

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from ..obs.tracer import Tracer


@dataclass(frozen=True)
class FederationReport:
    """Aggregate metrics of a federated run plus per-library detail."""

    #: One report per library, in fleet index order.
    per_library: List[MetricsReport]
    #: Requests the routing phase sent to each library (parallel to
    #: :attr:`per_library`); the farm-style even split under the
    #: pass-through policy.
    routed_requests: Tuple[int, ...] = ()
    #: The global policy that produced the routing.
    policy: str = ""
    #: Per-library traces (empty unless a ``tracer_factory`` was given).
    traces: List["Tracer"] = field(default_factory=list)

    @property
    def rollup(self) -> ReportRollup:
        """The additive rollup over :attr:`per_library`."""
        return ReportRollup(self.per_library)

    @property
    def size(self) -> int:
        """Number of libraries in the federation."""
        return len(self.per_library)

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total fleet throughput (sum over libraries)."""
        return self.rollup.aggregate_throughput_kb_s

    @property
    def aggregate_requests_per_min(self) -> float:
        """Total fleet completion rate."""
        return self.rollup.aggregate_requests_per_min

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted mean response time across the fleet."""
        return self.rollup.mean_response_s

    @property
    def throughput_per_library_kb_s(self) -> float:
        """Fleet throughput per library (Section 4.8 numerator, scaled out)."""
        return self.aggregate_throughput_kb_s / self.size

    @property
    def total_shed(self) -> int:
        """Requests shed by admission control across the fleet."""
        return self.rollup.total_shed

    @property
    def total_expired(self) -> int:
        """Requests expired (TTL passed) across the fleet."""
        return self.rollup.total_expired

    @property
    def deadline_miss_rate(self) -> float:
        """Finished-work-weighted deadline-miss rate across the fleet."""
        return self.rollup.deadline_miss_rate

    @property
    def worst_p99_response_s(self) -> float:
        """Largest per-library p99 response time (the fleet's SLO tail)."""
        return self.rollup.worst_p99_response_s

    @property
    def saturated_count(self) -> int:
        """Libraries whose measurement window completed nothing."""
        return self.rollup.saturated_count


def federation_report_digest(report: FederationReport) -> str:
    """A content hash of the full federation report.

    Same canonical form as :func:`repro.service.metrics.report_digest`
    (sorted-key JSON of the dataclass dict, traces excluded), so golden
    pins detect any per-library or routing drift bit-for-bit.
    """
    payload = {
        "per_library": [dataclasses.asdict(r) for r in report.per_library],
        "routed_requests": list(report.routed_requests),
        "policy": report.policy,
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
