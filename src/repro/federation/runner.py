"""Federated executor: route a fleet-wide workload, then simulate each library.

A federated run has two phases:

1. **Routing** — a deterministic, seeded request stream (its own named
   RNG stream, ``federation:routing``) draws ``routing_samples``
   block requests with the fleet's RH hot/cold skew, mirrors each one
   through the global policy against the replica registry's holder
   sets, and tallies where the load lands.  The fleet's closed
   population is then apportioned to libraries proportionally to the
   routed counts, and each library's observed hot fraction becomes its
   local RH.
2. **Per-library simulation** — each library runs the *existing*
   single-/multi-drive service loop via its own derived
   :class:`~repro.experiments.config.ExperimentConfig` (per-library
   seed stream ``farm:<index>``, identical to the farm path, which is
   what makes a 1-library pass-through federation bit-identical to
   ``run_farm``).  Faults, QoS, and obs layers apply unchanged.

Libraries the routing phase sends nothing to produce an idle all-zero
report rather than being skipped, so per-library lists always align
with the fleet index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..experiments.config import ExperimentConfig
from ..rng import derive_seed
from ..service.metrics import MetricsCollector, MetricsReport
from ..tape.timing import EXB_8505XL
from .config import FederationConfig, LibraryConfig
from .policies import FleetState, GlobalPolicy
from .registry import make_global_policy
from .replica import ReplicaRegistry, apportion

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from ..obs.tracer import Tracer

#: Named RNG stream feeding the routing phase (disjoint from every
#: per-library simulation stream by construction).
ROUTING_STREAM = "federation:routing"


@dataclass(frozen=True)
class FederationResult:
    """A federation config together with its fleet report."""

    config: FederationConfig
    report: "FederationReport"

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total fleet throughput in KB/s."""
        return self.report.aggregate_throughput_kb_s

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted fleet mean response time."""
        return self.report.mean_response_s


def predicted_service_s(library: LibraryConfig, block_mb: float) -> float:
    """Static mean-service estimate for one library, in seconds.

    A per-request cost sketch from the library's own timing model: a
    share of a tape switch (amortized over a sweep's worth of reads), a
    locate over the mean seek distance (one third of a full tape), and
    the block transfer — divided by the drive count, since drives serve
    a shared pending list.  Only *relative* magnitudes matter: the
    predicted-service policy compares libraries, never absolute times.
    """
    if library.drive_technology == "serpentine":
        from ..tape.serpentine import DLT_STYLE

        timing = DLT_STYLE
    else:
        timing = EXB_8505XL
    if library.drive_speedup != 1.0:
        timing = timing.scaled(library.drive_speedup)
    estimate = (
        timing.switch() / 8.0
        + timing.locate(0.0, library.capacity_mb / 3.0)
        + timing.read(block_mb)
    )
    return estimate / library.drive_count


def route_fleet(
    config: FederationConfig,
    registry: ReplicaRegistry,
    policy: GlobalPolicy,
) -> Tuple[List[int], List[int]]:
    """Phase 1: tally where the global policy sends the workload.

    Returns ``(routed, hot_routed)`` per library.  Deterministic given
    the config: the sample stream is seeded from
    ``derive_seed(config.seed, ROUTING_STREAM)`` and policies are
    RNG-free.
    """
    rng = random.Random(derive_seed(config.seed, ROUTING_STREAM))
    estimates = tuple(
        predicted_service_s(library, config.block_mb)
        for library in config.libraries
    )
    state = FleetState(routed=[0] * config.size, predicted_service_s=estimates)
    hot_routed = [0] * config.size
    for _ in range(config.routing_samples):
        # Mirrors HotColdSkew.draw_block against the fleet catalog.
        want_hot = rng.random() < config.percent_requests_hot / 100.0
        if want_hot and registry.n_hot > 0:
            block = rng.randrange(registry.n_hot)
        elif registry.n_cold > 0:
            block = registry.n_hot + rng.randrange(registry.n_cold)
        else:
            block = rng.randrange(registry.n_hot)
        holders = registry.holders(block)
        target = policy.route(block, holders, state)
        if target not in holders:
            raise RuntimeError(
                f"policy {policy.name!r} routed block {block} to library "
                f"{target}, which holds no copy (holders: {holders})"
            )
        state.routed[target] += 1
        if registry.is_hot(block):
            hot_routed[target] += 1
    return state.routed, hot_routed


def library_config(
    config: FederationConfig,
    registry: ReplicaRegistry,
    index: int,
    queue_length: int,
    percent_requests_hot: float,
) -> ExperimentConfig:
    """The derived single-library config for fleet member ``index``.

    Seeds use the ``farm:<index>`` stream — the same derivation as
    :func:`repro.service.farm.run_farm` — so the 1-library pass-through
    federation reuses the farm's exact per-library configs.
    """
    library = config.libraries[index]
    return ExperimentConfig(
        scheduler=library.scheduler or config.scheduler,
        layout=config.layout,
        percent_hot=registry.local_percent_hot(index),
        percent_requests_hot=percent_requests_hot,
        replicas=registry.local_replicas(index),
        start_position=config.start_position,
        block_mb=config.block_mb,
        tape_count=library.tape_count,
        capacity_mb=library.capacity_mb,
        queue_length=queue_length,
        horizon_s=config.horizon_s,
        warmup_fraction=config.warmup_fraction,
        seed=derive_seed(config.seed, f"farm:{index}") % (2**31),
        pack_cold=config.pack_cold,
        drive_speedup=library.drive_speedup,
        drive_technology=library.drive_technology,
        drive_count=library.drive_count,
        faults=config.faults,
        qos=config.qos,
    )


def _idle_report(config: FederationConfig) -> MetricsReport:
    """The all-zero report of a library that received no work."""
    collector = MetricsCollector(
        block_mb=config.block_mb,
        warmup_s=config.horizon_s * config.warmup_fraction,
    )
    collector.finalize(config.horizon_s)
    return collector.report()


def run_federation(
    config: FederationConfig,
    obs: Optional["Tracer"] = None,
    tracer_factory: Optional[Callable[[int], "Tracer"]] = None,
) -> FederationResult:
    """Simulate a federated fleet end to end.

    ``obs`` (optional) traces library 0 — the single-tracer hook the
    campaign engine's ``trace_dir`` uses uniformly across run kinds.
    ``tracer_factory(index)`` (optional) traces every library, like
    :func:`~repro.service.farm.run_farm`; it wins over ``obs``.
    """
    from ..experiments.runner import _run_experiment  # circular-import guard
    from .report import FederationReport

    registry = ReplicaRegistry(config)
    policy = make_global_policy(config.global_policy)
    if policy.bypass_routing and config.size != 1:
        raise ValueError(
            f"global policy {config.global_policy!r} bypasses routing and "
            f"requires exactly one library, got {config.size}"
        )

    if policy.bypass_routing:
        # The farm's even split, no routing stream consumed: the
        # 1-library case degenerates to the whole population at home.
        share, remainder = divmod(config.queue_length, config.size)
        queue_lengths = [
            share + (1 if index < remainder else 0) for index in range(config.size)
        ]
        routed = list(queue_lengths)
        local_rh = [config.percent_requests_hot] * config.size
    else:
        routed, hot_routed = route_fleet(config, registry, policy)
        queue_lengths = apportion(
            config.queue_length, [float(count) for count in routed]
        )
        local_rh = [
            100.0 * hot_routed[index] / routed[index]
            if routed[index] > 0
            else config.percent_requests_hot
            for index in range(config.size)
        ]

    if tracer_factory is None and obs is not None:
        tracer_factory = lambda index: obs if index == 0 else None

    reports: List[MetricsReport] = []
    traces: List["Tracer"] = []
    for index in range(config.size):
        tracer = tracer_factory(index) if tracer_factory is not None else None
        if queue_lengths[index] == 0:
            reports.append(_idle_report(config))
        else:
            local = library_config(
                config, registry, index, queue_lengths[index], local_rh[index]
            )
            reports.append(_run_experiment(local, obs=tracer).report)
        if tracer is not None:
            traces.append(tracer)
    report = FederationReport(
        per_library=reports,
        routed_requests=tuple(routed),
        policy=config.global_policy,
        traces=traces,
    )
    return FederationResult(config=config, report=report)
