"""Cross-library replica registry: which libraries hold which blocks.

The registry extends the paper's capacity accounting (Section 4.8) to a
fleet: the federation's physical slot pool is the sum of every
library's ``tape_count * floor(capacity_mb / block_mb)``, and the
feasible ``(n_logical, n_hot)`` budget comes from the same
:func:`~repro.layout.placement.logical_block_budget` solver a single
library uses — ``n_logical + NR * n_hot <= fleet_slots``.

Blocks get *home* libraries by slot share (largest-remainder
apportionment, so heterogeneous libraries hold data proportional to
their capacity and the assignment is deterministic).  Hot block ids are
``0 .. n_hot-1``, cold ids follow, matching the single-library catalog
convention.  Placement then decides where a hot block's NR extra copies
live:

* ``home`` — all copies inside the home library (on distinct tapes, the
  paper's scheme); only the home library can serve the block.
* ``spread`` — copy ``c`` lives in library ``(home + c) % size``; any
  of the NR+1 holders can serve the block, which is what gives the
  global tier routing freedom.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Tuple

from ..layout.placement import logical_block_budget
from .config import FederationConfig


def apportion(total: int, weights: List[float]) -> List[int]:
    """Split ``total`` integer units proportionally to ``weights``.

    Largest-remainder (Hamilton) apportionment: exact, deterministic,
    ties broken toward the lower index.  Zero-weight entries get zero.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total!r}")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    quotas = [total * weight / weight_sum for weight in weights]
    shares = [int(quota) for quota in quotas]
    leftover = total - sum(shares)
    # Stable sort on descending fractional remainder → lower index wins ties.
    order = sorted(
        range(len(weights)), key=lambda i: quotas[i] - shares[i], reverse=True
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares


class ReplicaRegistry:
    """Block → holder-libraries map for one :class:`FederationConfig`."""

    def __init__(self, config: FederationConfig) -> None:
        self.config = config
        self.size = config.size
        #: Physical block slots per library.
        self.slots: Tuple[int, ...] = tuple(
            library.tape_count * int(library.capacity_mb / config.block_mb)
            for library in config.libraries
        )
        for index, slots in enumerate(self.slots):
            if slots < 1:
                raise ValueError(
                    f"library {index} holds no blocks: capacity_mb "
                    f"{config.libraries[index].capacity_mb} < block_mb "
                    f"{config.block_mb}"
                )
        self.fleet_slots = sum(self.slots)
        self.n_logical, self.n_hot = logical_block_budget(
            self.fleet_slots, config.fleet_replicas, config.percent_hot
        )
        self.n_cold = self.n_logical - self.n_hot
        weights = [float(slots) for slots in self.slots]
        #: Hot primaries / cold blocks homed at each library.
        self.hot_counts: List[int] = apportion(self.n_hot, weights)
        self.cold_counts: List[int] = apportion(self.n_cold, weights)
        # Prefix sums (cumulative ends) for O(log n) home lookup.
        self._hot_ends: List[int] = []
        self._cold_ends: List[int] = []
        running = 0
        for count in self.hot_counts:
            running += count
            self._hot_ends.append(running)
        running = 0
        for count in self.cold_counts:
            running += count
            self._cold_ends.append(running)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def home(self, block: int) -> int:
        """The library a block's primary copy is homed at."""
        if not 0 <= block < self.n_logical:
            raise ValueError(
                f"block {block!r} outside the fleet catalog "
                f"[0, {self.n_logical})"
            )
        if block < self.n_hot:
            return bisect_right(self._hot_ends, block)
        return bisect_right(self._cold_ends, block - self.n_hot)

    def is_hot(self, block: int) -> bool:
        """True when ``block`` is in the hot set."""
        return 0 <= block < self.n_hot

    def holders(self, block: int) -> Tuple[int, ...]:
        """Libraries holding a readable copy of ``block`` (home first)."""
        home = self.home(block)
        if (
            block >= self.n_hot
            or self.config.fleet_replicas == 0
            or self.config.placement == "home"
        ):
            return (home,)
        return tuple(
            (home + c) % self.size for c in range(self.config.fleet_replicas + 1)
        )

    # ------------------------------------------------------------------
    # Per-library derived layout (feeds the local ExperimentConfig)
    # ------------------------------------------------------------------
    def local_hot_stored(self, index: int) -> int:
        """Hot blocks physically stored at library ``index``.

        Under ``spread`` the incoming copies of other libraries' hot
        blocks count — they occupy slots and enlarge the local hot run.
        Under ``home`` only the primaries count; the local NR copies are
        modelled by the library's own replication layout.
        """
        stored = self.hot_counts[index]
        if self.config.placement == "spread":
            for c in range(1, self.config.fleet_replicas + 1):
                stored += self.hot_counts[(index - c) % self.size]
        return stored

    def local_percent_hot(self, index: int) -> float:
        """The PH the library's local catalog should be built with.

        ``home`` keeps the fleet PH exactly (each library is a shrunken
        copy of the paper's layout, which also keeps the 1-library
        federation bit-identical to the farm path).  ``spread`` boosts
        PH by the incoming copies so the local hot run reflects the
        extra hot data the library physically stores.
        """
        if self.config.placement == "home":
            return self.config.percent_hot
        hot = self.local_hot_stored(index)
        cold = self.cold_counts[index]
        if hot + cold == 0:
            return self.config.percent_hot
        return min(100.0, 100.0 * hot / (hot + cold))

    def local_replicas(self, index: int) -> int:
        """The NR the library's local catalog should be built with."""
        if self.config.placement == "home":
            return self.config.fleet_replicas
        return 0
