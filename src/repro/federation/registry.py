"""Global-policy registry: name -> fresh policy instance.

The exact pattern of :mod:`repro.core.registry`, one tier up: local
schedulers and global routing policies are both string-keyed families
constructed through a factory lookup, so the CLI, figures, and campaign
configs select either tier the same way.

Policies carry routing state (round-robin cursors), so every lookup
returns a new instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .policies import (
    GlobalPolicy,
    LeastQueuePolicy,
    PassThroughPolicy,
    PredictedServicePolicy,
    RoundRobinPolicy,
)


def _build_registry() -> Dict[str, Callable[[], GlobalPolicy]]:
    registry: Dict[str, Callable[[], GlobalPolicy]] = {}
    for policy_class in (
        PassThroughPolicy,
        RoundRobinPolicy,
        LeastQueuePolicy,
        PredictedServicePolicy,
    ):
        registry[policy_class.name] = policy_class
    return registry


_REGISTRY = _build_registry()


def global_policy_names() -> List[str]:
    """All registered global policy names, sorted."""
    return sorted(_REGISTRY)


def make_global_policy(name: str) -> GlobalPolicy:
    """Instantiate the global policy registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(global_policy_names())
        raise KeyError(f"unknown global policy {name!r}; known: {known}") from None
    return factory()
