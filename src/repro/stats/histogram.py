"""Reservoir-free percentile estimation via fixed-width histograms.

For response-time distributions the simulator records samples into a
histogram with configurable bin width; percentiles are then interpolated
within the containing bin.  Exact small-sample percentiles are also
provided for tests and analysis code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def exact_percentile(values: Sequence[float], fraction: float) -> float:
    """Exact percentile with linear interpolation (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction!r} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Histogram:
    """Fixed-bin-width histogram with interpolated percentile queries."""

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width!r}")
        self.bin_width = float(bin_width)
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._total = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = math.floor(value / self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + 1
        self._count += 1
        self._total += value

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact mean of recorded samples (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (``fraction`` in [0, 1])."""
        if self._count == 0:
            raise ValueError("percentile of empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction!r} outside [0, 1]")
        target = fraction * self._count
        cumulative = 0
        for index in sorted(self._bins):
            bin_count = self._bins[index]
            if cumulative + bin_count >= target:
                # Interpolate linearly inside the containing bin.
                within = (target - cumulative) / bin_count
                return (index + within) * self.bin_width
            cumulative += bin_count
        last = max(self._bins)
        return (last + 1) * self.bin_width

    def bins(self) -> List[tuple]:
        """Sorted ``(bin_start, count)`` pairs for non-empty bins."""
        return [(index * self.bin_width, self._bins[index]) for index in sorted(self._bins)]
