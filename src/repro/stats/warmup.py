"""Warm-up window handling for steady-state simulation metrics.

The paper reports steady-state averages.  Samples collected before the
warm-up cutoff reflect the initial transient (empty queue, fresh tape at
position 0) and are discarded.
"""

from __future__ import annotations

from .online import RunningStats


class WarmupFilter:
    """Drops samples whose timestamp falls before the warm-up cutoff."""

    def __init__(self, cutoff_time: float) -> None:
        if cutoff_time < 0:
            raise ValueError(f"cutoff_time must be >= 0, got {cutoff_time!r}")
        self.cutoff_time = float(cutoff_time)
        self.accepted = RunningStats()
        self.dropped = 0

    def offer(self, time: float, value: float) -> bool:
        """Record ``value`` if ``time`` is past the cutoff; return whether kept."""
        if time < self.cutoff_time:
            self.dropped += 1
            return False
        self.accepted.add(value)
        return True
