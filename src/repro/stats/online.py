"""Online (single-pass) statistics accumulators.

These are used by the simulator's metric collectors, where runs produce
hundreds of thousands of samples and storing them all would be wasteful.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional


class RunningStats:
    """Welford's algorithm for count / mean / variance / min / max."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        value = float(value)
        self._count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = RunningStats()
        if self._count == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other._count == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        n = self._count + other._count
        delta = other._mean - self._mean
        merged._count = n
        merged._total = self._total + other._total
        merged._mean = self._mean + delta * other._count / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / n
        merged._min = min(self._min, other._min)  # type: ignore[type-var]
        merged._max = max(self._max, other._max)  # type: ignore[type-var]
        return merged

    @property
    def count(self) -> int:
        """Number of samples seen."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._total

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample seen (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample seen (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )
