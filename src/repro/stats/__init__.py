"""Online statistics substrate for the simulation metric collectors."""

from .batchmeans import (
    BatchMeans,
    ConfidenceInterval,
    batch_means_interval,
    t_quantile_975,
)
from .histogram import Histogram, exact_percentile
from .online import RunningStats
from .timeweighted import TimeWeightedStats
from .warmup import WarmupFilter

__all__ = [
    "BatchMeans",
    "ConfidenceInterval",
    "Histogram",
    "RunningStats",
    "TimeWeightedStats",
    "WarmupFilter",
    "batch_means_interval",
    "exact_percentile",
    "t_quantile_975",
]
