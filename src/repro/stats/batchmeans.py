"""Batch-means confidence intervals for steady-state simulation output.

Samples from a single simulation run are autocorrelated (consecutive
response times share queue state), so the naive i.i.d. standard error
understates uncertainty.  The classic remedy is the method of batch
means: split the run into ``batch_count`` contiguous batches, average
within each batch, and treat the batch averages as approximately
independent observations.  With tens of batches of thousands of
samples each, the Student-t interval over batch means is a sound
steady-state confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

#: Two-sided Student-t 97.5% quantiles for df = 1..30 (95% intervals);
#: beyond 30 degrees of freedom the normal value is used.
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)
_Z_975 = 1.960


def t_quantile_975(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value."""
    if degrees_of_freedom < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {degrees_of_freedom!r}")
    if degrees_of_freedom <= len(_T_975):
        return _T_975[degrees_of_freedom - 1]
    return _Z_975


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a symmetric 95% half-width."""

    mean: float
    half_width: float
    batch_count: int

    @property
    def low(self) -> float:
        """Lower 95% bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper 95% bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for zero mean)."""
        if self.mean == 0:
            return float("inf")
        return abs(self.half_width / self.mean)


class BatchMeans:
    """Online batch-means accumulator.

    Samples stream in; once a batch fills, its mean is frozen.  The
    final partial batch is discarded (standard practice), so supply
    roughly ``batch_count * batch_size`` samples.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size!r}")
        self.batch_size = batch_size
        self._batch_sum = 0.0
        self._batch_count_in_progress = 0
        self._means: List[float] = []

    def add(self, value: float) -> None:
        """Fold one sample into the current batch."""
        self._batch_sum += float(value)
        self._batch_count_in_progress += 1
        if self._batch_count_in_progress == self.batch_size:
            self._means.append(self._batch_sum / self.batch_size)
            self._batch_sum = 0.0
            self._batch_count_in_progress = 0

    @property
    def batch_means(self) -> List[float]:
        """Completed batch means, in time order."""
        return list(self._means)

    @property
    def complete_batches(self) -> int:
        """Number of full batches accumulated."""
        return len(self._means)

    def interval(self) -> Optional[ConfidenceInterval]:
        """95% confidence interval over batch means (None below 2 batches)."""
        count = len(self._means)
        if count < 2:
            return None
        mean = sum(self._means) / count
        variance = sum((m - mean) ** 2 for m in self._means) / (count - 1)
        half_width = t_quantile_975(count - 1) * math.sqrt(variance / count)
        return ConfidenceInterval(mean=mean, half_width=half_width, batch_count=count)


def batch_means_interval(
    samples: List[float], batch_count: int = 20
) -> Optional[ConfidenceInterval]:
    """Convenience: interval from a stored sample list.

    ``batch_count`` contiguous batches of equal size; trailing samples
    that do not fill the last batch are dropped.
    """
    if batch_count < 2:
        raise ValueError(f"batch_count must be >= 2, got {batch_count!r}")
    batch_size = len(samples) // batch_count
    if batch_size == 0:
        return None
    accumulator = BatchMeans(batch_size)
    for value in samples[: batch_size * batch_count]:
        accumulator.add(value)
    return accumulator.interval()
