"""Time-weighted statistics for piecewise-constant signals.

Queue length, drive utilization, and similar signals change at event
instants and hold their value in between, so their mean must be weighted
by how long each value persisted.
"""

from __future__ import annotations

from typing import Optional


class TimeWeightedStats:
    """Accumulates a piecewise-constant signal's time-weighted statistics.

    Call :meth:`update` at every instant the signal changes, then
    :meth:`finalize` (or read :attr:`mean` with an explicit ``now``) at the
    end of the run.
    """

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._last_time = float(initial_time)
        self._last_value = float(initial_value)
        self._weighted_sum = 0.0
        self._weighted_sq_sum = 0.0
        self._elapsed = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def update(self, now: float, value: float) -> None:
        """Record that the signal takes ``value`` from time ``now`` onward."""
        now = float(now)
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._accumulate(now)
        self._last_value = float(value)
        if self._min is None or value < self._min:
            self._min = float(value)
        if self._max is None or value > self._max:
            self._max = float(value)

    def _accumulate(self, now: float) -> None:
        span = now - self._last_time
        if span > 0:
            self._weighted_sum += span * self._last_value
            self._weighted_sq_sum += span * self._last_value * self._last_value
            self._elapsed += span
        self._last_time = now

    def finalize(self, now: float) -> None:
        """Extend the current value up to ``now`` (end of run)."""
        self._accumulate(float(now))

    @property
    def elapsed(self) -> float:
        """Total time accumulated so far."""
        return self._elapsed

    @property
    def mean(self) -> float:
        """Time-weighted mean of the signal (0.0 if no time elapsed)."""
        if self._elapsed == 0:
            return 0.0
        return self._weighted_sum / self._elapsed

    @property
    def mean_square(self) -> float:
        """Time-weighted mean of the squared signal."""
        if self._elapsed == 0:
            return 0.0
        return self._weighted_sq_sum / self._elapsed

    @property
    def variance(self) -> float:
        """Time-weighted population variance."""
        mean = self.mean
        return max(0.0, self.mean_square - mean * mean)

    @property
    def minimum(self) -> float:
        """Smallest value observed (0.0 if never updated)."""
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        """Largest value observed (0.0 if never updated)."""
        return self._max if self._max is not None else 0.0
