"""Reproducible named random streams.

A simulation mixes several stochastic components (block skew draws,
Poisson interarrivals, future extensions).  Deriving each component's
generator from a root seed plus a stable stream *name* keeps runs
reproducible even when components are added, removed, or consume
different amounts of randomness: stream "arrivals" yields the same
sequence regardless of what stream "skew" consumed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, stream_name: str) -> int:
    """A stable 64-bit seed for ``stream_name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{stream_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of independent, name-addressed ``random.Random`` streams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The generator for ``name`` (created on first use, then shared)."""
        generator = self._streams.get(name)
        if generator is None:
            generator = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """A child stream space, e.g. one per jukebox in a farm."""
        return RandomStreams(derive_seed(self.root_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
