#!/usr/bin/env python3
"""Trace-driven shoot-out: every scheduler on the *same* request stream.

Records one closed-queueing workload trace, then replays the identical
block sequence under all seventeen scheduling algorithms (the paper's
fourteen plus the LTSP baselines) and ranks them.
Replaying a fixed trace removes workload randomness from the
comparison — differences in the table are purely algorithmic, which is
how the paper's parametric graphs should be read.

Usage::

    python examples/scheduler_shootout.py [horizon_seconds] [queue_length]
"""

import random
import sys

from repro.core import make_scheduler, scheduler_names
from repro.des import Environment
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew
from repro.workload.trace import ClosedReplaySource, TraceRecorder

BLOCK_MB = 16.0


def build_catalog_for_run():
    """Full replication at the tape ends: the layout where algorithmic
    differences (especially the envelope's) are widest."""
    spec = PlacementSpec(
        layout=Layout.VERTICAL,
        percent_hot=10,
        replicas=9,
        start_position=1.0,
        block_mb=BLOCK_MB,
    )
    return build_catalog(spec, 10, 7 * 1024.0)


def simulate(catalog, scheduler_name, source, horizon_s):
    simulator = JukeboxSimulator(
        env=Environment(),
        jukebox=Jukebox.build(),
        catalog=catalog,
        scheduler=make_scheduler(scheduler_name),
        source=source,
        metrics=MetricsCollector(block_mb=BLOCK_MB, warmup_s=horizon_s * 0.1),
    )
    return simulator.run(horizon_s)


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 150_000.0
    queue_length = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    catalog = build_catalog_for_run()

    # Record a generously long trace once (the slowest scheduler still
    # needs enough entries; the replay cycles if it runs dry).
    recorder = TraceRecorder(
        ClosedSource(queue_length, HotColdSkew(40.0), catalog, random.Random(7))
    )
    recorder.initial_requests(0.0)
    for _ in range(200_000):
        recorder.on_completion(0.0)
    trace = recorder.block_ids()
    print(
        f"Recorded a {len(trace):,}-request trace (PH-10 RH-40, NR-9 SP-1, "
        f"Q-{queue_length}); replaying under {len(scheduler_names())} schedulers "
        f"for {horizon_s:,.0f} s each...\n"
    )

    rows = []
    for name in scheduler_names():
        source = ClosedReplaySource(queue_length, trace, cycle=True)
        report = simulate(catalog, name, source, horizon_s)
        rows.append(
            (
                name,
                report.throughput_kb_s,
                report.mean_response_s,
                report.p95_response_s,
                report.switches_per_hour,
            )
        )
    rows.sort(key=lambda row: -row[1])
    ranked = [
        (index + 1, *row) for index, row in enumerate(rows)
    ]
    print(
        format_table(
            ("rank", "scheduler", "KB/s", "delay_s", "p95_s", "switch/h"),
            ranked,
        )
    )
    best, worst = rows[0], rows[-1]
    print(
        f"\nSame request stream, {best[1] / worst[1]:.1f}x spread between "
        f"{best[0]} and {worst[0]} — scheduling is the whole difference."
    )


if __name__ == "__main__":
    main()
