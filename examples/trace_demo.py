#!/usr/bin/env python3
"""Trace a run end to end: spans, phase breakdown, and exports.

Attaches a :class:`repro.obs.Tracer` to a fault-injected envelope run,
then shows the three things the observability layer gives you:

1. *Where the time went* — the per-phase breakdown of the mean
   response time, which reconciles exactly with the metrics pipeline.
2. *A per-request audit* — the span chain of the slowest completed
   request, from arrival to delivery.
3. *Exports* — a Chrome trace-event file (drop it on
   https://ui.perfetto.dev to scrub the timeline), the full JSONL
   record stream, and the summary JSON ``tools/trace_diff.py`` diffs.

Usage::

    python examples/trace_demo.py [horizon_seconds] [output_dir]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import ExperimentConfig, Layout, run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.obs import Tracer, TraceSummary, write_chrome_trace, write_jsonl
from repro.report.text import format_trace_summary


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 100_000.0
    out_dir = (
        Path(sys.argv[2])
        if len(sys.argv) > 2
        else Path(tempfile.mkdtemp(prefix="trace-demo-"))
    )

    config = ExperimentConfig(
        scheduler="envelope-max-requests",
        layout=Layout.VERTICAL,
        replicas=2,
        start_position=1.0,
        queue_length=30,
        horizon_s=horizon_s,
        faults=FaultConfig(
            media_error_rate=0.05, bad_replica_rate=0.03, retry=RetryPolicy()
        ),
    )

    tracer = Tracer()
    result = run_experiment(config, obs=tracer)
    print(f"[{result.config.describe()}]")
    print(result.report)
    print()

    summary = TraceSummary.from_tracer(tracer, warmup_s=config.warmup_s)
    print(format_trace_summary(summary))
    print()

    completed = [
        trace
        for trace in tracer.terminal_traces()
        if trace.outcome == "complete"
    ]
    slowest = max(completed, key=lambda trace: trace.response_s)
    audits = [("slowest completed request", slowest)]
    recovered = [t for t in completed if "recovery" in t.phases]
    if recovered:
        worst = max(recovered, key=lambda t: t.phases["recovery"])
        audits.append(("completed after fault recovery/failover", worst))
    for label, trace in audits:
        print(
            f"{label}: #{trace.request_id} "
            f"(block {trace.block_id}, {trace.response_s:.1f} s end to end)"
        )
        for phase, start_s, end_s in trace.spans:
            print(f"  {start_s:>10.1f} .. {end_s:>10.1f}  {phase:<10} "
                  f"({end_s - start_s:.1f} s)")
        print()

    out_dir.mkdir(parents=True, exist_ok=True)
    chrome_path = out_dir / "trace.json"
    jsonl_path = out_dir / "trace.jsonl"
    summary_path = out_dir / "summary.json"
    payload = write_chrome_trace(tracer, str(chrome_path))
    records = write_jsonl(tracer, str(jsonl_path))
    summary_path.write_text(
        json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {chrome_path} ({len(payload['traceEvents'])} events) — "
          "open it at https://ui.perfetto.dev")
    print(f"wrote {jsonl_path} ({records} records)")
    print(f"wrote {summary_path} — compare runs with tools/trace_diff.py")


if __name__ == "__main__":
    main()
