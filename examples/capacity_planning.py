#!/usr/bin/env python3
"""Capacity planning: should you replicate hot data in your jukebox?

The paper's Section 4.8 answer is nuanced: replication always improves
raw performance, but improves performance *per dollar* only under high
skew.  This example sweeps the skew (RH) and replication degree (NR)
for a jukebox and prints an advisory table: the expansion factor, the
throughput gain, and the cost-performance ratio at each point — ending
with the paper's "for free" recommendation when spare capacity exists.

Usage::

    python examples/capacity_planning.py [horizon_seconds]
"""

import sys

from repro import ExperimentConfig, Layout, run_experiment
from repro.analysis import effective_queue_length
from repro.layout import expansion_factor
from repro.report import format_table

PERCENT_HOT = 10.0
BASE_QUEUE = 60


def throughput(skew: float, replicas: int, queue: int, horizon_s: float) -> float:
    config = ExperimentConfig(
        scheduler="envelope-max-bandwidth",
        layout=Layout.VERTICAL,
        percent_hot=PERCENT_HOT,
        percent_requests_hot=skew,
        replicas=replicas,
        start_position=1.0 if replicas else 0.0,
        queue_length=queue,
        horizon_s=horizon_s,
    )
    return run_experiment(config).throughput_kb_s


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 120_000.0
    skews = (20.0, 40.0, 80.0)
    replica_counts = (0, 2, 9)

    rows = []
    for skew in skews:
        baseline = throughput(skew, 0, BASE_QUEUE, horizon_s)
        for replicas in replica_counts:
            expansion = expansion_factor(replicas, PERCENT_HOT)
            same_cost_queue = effective_queue_length(BASE_QUEUE, expansion)
            raw = throughput(skew, replicas, BASE_QUEUE, horizon_s)
            fair = (
                baseline
                if replicas == 0
                else throughput(skew, replicas, same_cost_queue, horizon_s)
            )
            rows.append(
                (
                    f"RH-{skew:g}",
                    replicas,
                    expansion,
                    raw / baseline,
                    fair / baseline,
                )
            )

    print(f"Jukebox: 10 tapes x 7 GB, PH-{PERCENT_HOT:g}, queue {BASE_QUEUE}.")
    print("perf_gain: same workload, one jukebox.  costperf: per dollar,")
    print(f"workload spread over E jukeboxes (queue {BASE_QUEUE}/E).\n")
    print(
        format_table(
            ("skew", "NR", "expansion E", "perf_gain", "costperf"),
            rows,
            float_format="{:.3f}",
        )
    )

    print(
        "\nReading the table: raw performance always improves with NR, but"
        "\ncost-performance only exceeds 1.0 under high skew — the paper's"
        "\nSection 4.8 conclusion.  If your jukebox already has spare"
        "\ncapacity, the replicas occupy space you were not selling:"
        "\nappend them to the tape ends and take the perf_gain column for"
        "\nfree."
    )


if __name__ == "__main__":
    main()
