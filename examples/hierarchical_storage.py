#!/usr/bin/env python3
"""The full storage hierarchy of the paper's introduction, end to end.

"Hot data are placed or cached in semiconductor memory, and warm data
are on magnetic disks" — the tape jukebox serves the cold remainder.
This example runs client traffic (Poisson arrivals, strong RH-80 skew)
against a three-tier hierarchy and shows:

* how much traffic each tier absorbs,
* the user-visible latency split (microseconds / sub-second / minutes),
* how the caches *flatten the skew* the jukebox observes — which is why
  the paper studies jukeboxes under moderated skews in the first place.

Usage::

    python examples/hierarchical_storage.py [horizon_seconds]
"""

import random
import sys

from repro.core import make_scheduler
from repro.des import Environment
from repro.hierarchy import HierarchySimulator
from repro.hierarchy.simulator import _TapeOnlySource
from repro.layout import PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import HotColdSkew

BLOCK_MB = 16.0
CLIENT_RH = 80.0


def build_hierarchy(memory_blocks: int, disk_blocks: int) -> HierarchySimulator:
    catalog = build_catalog(
        PlacementSpec(percent_hot=10, block_mb=BLOCK_MB), 10, 7 * 1024.0
    )
    tape = JukeboxSimulator(
        env=Environment(),
        jukebox=Jukebox.build(),
        catalog=catalog,
        scheduler=make_scheduler("dynamic-max-bandwidth"),
        source=_TapeOnlySource(),
        metrics=MetricsCollector(block_mb=BLOCK_MB),
    )
    return HierarchySimulator(
        jukebox_simulator=tape,
        memory_blocks=memory_blocks,
        disk_blocks=disk_blocks,
        skew=HotColdSkew(CLIENT_RH),
        rng=random.Random(11),
        mean_interarrival_s=40.0,
    )


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 200_000.0

    configurations = (
        ("tape only", 0, 0),
        ("disk cache", 0, 600),
        ("memory + disk", 64, 600),
    )
    rows = []
    flattening = []
    for label, memory_blocks, disk_blocks in configurations:
        hierarchy = build_hierarchy(memory_blocks, disk_blocks)
        stats = hierarchy.run(horizon_s)
        rows.append(
            (
                label,
                stats.total,
                stats.memory_hits,
                stats.disk_hits,
                stats.tape_misses,
                stats.latency.mean,
            )
        )
        flattening.append((label, hierarchy.observed_tape_skew))

    print(f"Three-tier hierarchy, client skew RH-{CLIENT_RH:g}, PH-10, "
          f"{horizon_s:,.0f} s:\n")
    print(
        format_table(
            ("configuration", "requests", "mem_hits", "disk_hits",
             "tape_reads", "mean_latency_s"),
            rows,
        )
    )
    print("\nSkew observed by the jukebox (percent of tape requests that "
          "are for hot blocks):")
    print(
        format_table(
            ("configuration", "observed_RH"),
            [(label, skew) for label, skew in flattening],
        )
    )
    print(
        "\nThe caches soak up hot traffic: the jukebox's effective skew"
        f"\ndrops well below the client RH-{CLIENT_RH:g} — the 'relatively"
        " cold'\noperating regime the paper assumes for tape."
    )


if __name__ == "__main__":
    main()
