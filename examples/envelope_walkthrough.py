#!/usr/bin/env python3
"""Executable walkthrough of the paper's Figure 2 envelope example.

Four blocks are requested: A, B on tape 1, C on tape 0, and D replicated
on both tapes — right after C on tape 0, and near the end of tape 1.
A greedy per-tape scheduler mounted on tape 1 reads A, B, then travels
all the way to the end of tape 1 for D.  The envelope-extension
algorithm instead notices that extending tape 0's envelope from C to D
is far cheaper, and serves D from tape 0.

Usage::

    python examples/envelope_walkthrough.py
"""

from repro.core import EnvelopeComputer, PendingList, SchedulerContext
from repro.layout import BlockCatalog, Replica
from repro.tape import EXB_8505XL, Jukebox
from repro.workload import RequestFactory

BLOCK_MB = 16.0
NAMES = "ABCD"


def build_figure2_catalog() -> BlockCatalog:
    """Tape 0: C at 0, D at 16.  Tape 1: A at 0, B at 16, D at 6000."""
    return BlockCatalog(
        block_mb=BLOCK_MB,
        n_hot=0,
        replicas_by_block=[
            [Replica(1, 0.0)],                 # A
            [Replica(1, 16.0)],                # B
            [Replica(0, 0.0)],                 # C
            [Replica(0, 16.0), Replica(1, 6000.0)],  # D (replicated)
        ],
    )


def describe_tapes(catalog: BlockCatalog) -> None:
    for tape_id in (0, 1):
        contents = ", ".join(
            f"{NAMES[block]}@{position:g}MB"
            for position, block in catalog.tape_contents(tape_id)
        )
        print(f"  tape {tape_id}: {contents}")


def main() -> None:
    catalog = build_figure2_catalog()
    print("Figure 2 layout (head at the beginning of tape 1):")
    describe_tapes(catalog)

    factory = RequestFactory()
    requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]

    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=2,
        mounted_id=1,
        head_mb=0.0,
    )
    state = computer.compute(requests)

    print("\nUpper envelope (per tape, MB the head must traverse):")
    for tape_id in (0, 1):
        print(f"  tape {tape_id}: {state.envelope[tape_id]:g} MB")

    print("\nReplica assignment:")
    for request in requests:
        replica = state.assignment[request.request_id]
        print(
            f"  {NAMES[request.block_id]} -> tape {replica.tape_id} "
            f"@ {replica.position_mb:g} MB"
        )

    d_replica = state.assignment[requests[3].request_id]
    assert d_replica == Replica(0, 16.0), "envelope should pick D's copy on tape 0"

    # Contrast with the greedy alternative: cost of fetching D at the end
    # of tape 1 versus right after C on tape 0.
    greedy_cost = EXB_8505XL.locate_forward(6000.0 - 32.0) + EXB_8505XL.read(BLOCK_MB)
    envelope_cost = EXB_8505XL.read(BLOCK_MB)  # streams right after C
    print(
        f"\nFetching D greedily from tape 1 costs {greedy_cost:,.0f} s of "
        f"locate+read;\nthe envelope reads it in {envelope_cost:,.0f} s while "
        "already passing over tape 0."
    )

    print("\nEnvelope extension avoided the long traversal - Figure 2 reproduced.")


if __name__ == "__main__":
    main()
