#!/usr/bin/env python3
"""Quickstart: simulate a tape jukebox and compare two configurations.

Runs the paper's baseline workload (PH-10, RH-40, queue 60) twice:
once with no replication and hot data at the beginning of the tapes
(the best non-replicated layout), and once with full replication at the
tape ends scheduled by the envelope-extension algorithm (the paper's
recommended configuration).  Prints the steady-state metrics for both.

Usage::

    python examples/quickstart.py [horizon_seconds]
"""

import sys

from repro import ExperimentConfig, Layout, run_experiment


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 200_000.0

    baseline = ExperimentConfig(
        scheduler="dynamic-max-bandwidth",
        replicas=0,
        start_position=0.0,  # hot data at the beginning (best without replicas)
        queue_length=60,
        horizon_s=horizon_s,
    )
    recommended = ExperimentConfig(
        scheduler="envelope-max-bandwidth",
        layout=Layout.VERTICAL,
        replicas=9,          # a copy of every hot block on every tape
        start_position=1.0,  # replicas at the tape ends (best with replicas)
        queue_length=60,
        horizon_s=horizon_s,
    )

    print(f"Simulating {horizon_s:,.0f} s of jukebox activity per run...\n")
    results = {}
    for label, config in (("baseline", baseline), ("recommended", recommended)):
        result = run_experiment(config)
        results[label] = result
        print(f"{label:12s} [{config.describe()}]")
        print(f"{'':12s} {result.report}\n")

    base = results["baseline"].report
    best = results["recommended"].report
    throughput_gain = (best.throughput_kb_s / base.throughput_kb_s - 1) * 100
    delay_gain = (1 - best.mean_response_s / base.mean_response_s) * 100
    switch_drop = (1 - best.tape_switches / base.tape_switches) * 100
    print(
        f"Replication + envelope scheduling: "
        f"{throughput_gain:+.1f}% throughput, "
        f"{delay_gain:+.1f}% faster responses, "
        f"{switch_drop:+.1f}% fewer tape switches."
    )


if __name__ == "__main__":
    main()
