#!/usr/bin/env python3
"""Domain scenario: a video-on-demand archive tier on a tape jukebox.

The paper's introduction motivates tape tertiary storage with digital
libraries and video-on-demand servers.  This example models such a tier:
a large pool of subscribers sporadically pulls 16 MB video segments
(open queueing, Poisson arrivals), with a small popular catalog (new
releases) receiving most of the traffic.

It contrasts three operating points as the arrival rate grows toward
saturation, reporting the subscriber-visible latency:

1. naive       — FIFO scheduling, popularity-oblivious layout;
2. scheduled   — dynamic max-bandwidth scheduling, hot titles up front;
3. replicated  — envelope scheduling, popular titles replicated at the
                 tape ends (the paper's recommended configuration).

Usage::

    python examples/video_archive.py [horizon_seconds]
"""

import sys

from repro import ExperimentConfig, Layout, run_experiment
from repro.report import format_table

#: New releases are ~10% of the catalog and draw 80% of requests.
PH, RH = 10.0, 80.0


def scenario_config(name: str, interarrival_s: float, horizon_s: float) -> ExperimentConfig:
    if name == "naive":
        return ExperimentConfig(
            scheduler="fifo",
            percent_hot=PH,
            percent_requests_hot=RH,
            start_position=0.5,  # popularity-oblivious placement
            queue_length=None,
            mean_interarrival_s=interarrival_s,
            horizon_s=horizon_s,
        )
    if name == "scheduled":
        return ExperimentConfig(
            scheduler="dynamic-max-bandwidth",
            percent_hot=PH,
            percent_requests_hot=RH,
            start_position=0.0,  # hot titles at the tape beginnings
            queue_length=None,
            mean_interarrival_s=interarrival_s,
            horizon_s=horizon_s,
        )
    if name == "replicated":
        return ExperimentConfig(
            scheduler="envelope-max-bandwidth",
            layout=Layout.VERTICAL,
            percent_hot=PH,
            percent_requests_hot=RH,
            replicas=9,
            start_position=1.0,  # replicas appended at the tape ends
            queue_length=None,
            mean_interarrival_s=interarrival_s,
            horizon_s=horizon_s,
        )
    raise ValueError(name)


def main() -> None:
    horizon_s = float(sys.argv[1]) if len(sys.argv) > 1 else 150_000.0
    arrival_rates = (400.0, 200.0, 120.0)  # mean seconds between requests

    rows = []
    for interarrival_s in arrival_rates:
        per_hour = 3600.0 / interarrival_s
        for name in ("naive", "scheduled", "replicated"):
            result = run_experiment(scenario_config(name, interarrival_s, horizon_s))
            report = result.report
            rows.append(
                (
                    f"{per_hour:.0f}/h",
                    name,
                    report.mean_response_s,
                    report.p95_response_s,
                    report.total_completed - report.arrivals,
                )
            )

    print("Video archive tier: subscriber latency by operating point")
    print(f"({horizon_s:,.0f} simulated seconds per cell; backlog < 0 means")
    print("the tier cannot keep up with the arrival rate)\n")
    print(
        format_table(
            ("load", "configuration", "mean_s", "p95_s", "backlog"),
            rows,
            float_format="{:.0f}",
        )
    )
    print(
        "\nFIFO collapses first; scheduling alone sustains moderate load;"
        "\nreplication + envelope scheduling holds the lowest latency and"
        "\nthe highest sustainable arrival rate."
    )


if __name__ == "__main__":
    main()
