"""Setup shim for environments without the `wheel` package.

`pip install -e .` on modern pip requires bdist_wheel; this shim lets
`python setup.py develop` work offline as a fallback.
"""
from setuptools import setup

setup()
