"""Figure 5: placement of hot data, no replication.

Paper claims (Section 4.3): with a horizontal layout and no replication,
hot data belongs at the *beginning* of the tape (SP-0 dominates SP-1);
a vertical layout (all hot data on one tape) is best except under very
intense workloads.
"""

import pytest

from repro.experiments.figures import figure5

from _util import HORIZON_S, QUEUES, at_queue, mean_throughput, show, regenerate


@pytest.mark.benchmark(group="fig05")
def test_fig05_hot_data_placement(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure5,
        horizon_s=HORIZON_S,
        start_positions=(0.0, 0.5, 1.0),
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    # Hot data at the beginning clearly beats the end placement (the
    # paper's Q3 answer).  Beginning-vs-middle separates by less than our
    # run-to-run noise at this horizon, so the middle is only required
    # not to *beat* the beginning meaningfully.
    sp0 = mean_throughput(series["SP-0"])
    sp_half = mean_throughput(series["SP-0.5"])
    sp1 = mean_throughput(series["SP-1"])
    assert sp0 > 1.015 * sp1, f"SP-0 {sp0:.1f} should clearly beat SP-1 {sp1:.1f}"
    assert sp0 > 0.985 * sp_half, (sp0, sp_half)
    assert sp_half > sp1 * 0.99, (sp_half, sp1)

    # Delay ordering matches: beginning placement responds fastest.
    sp0_delay = at_queue(series["SP-0"], 60).mean_response_s
    sp1_delay = at_queue(series["SP-1"], 60).mean_response_s
    assert sp0_delay < sp1_delay

    # Vertical layout is competitive at light/moderate load.
    vertical_light = at_queue(series["vertical"], 20).throughput_kb_s
    sp0_light = at_queue(series["SP-0"], 20).throughput_kb_s
    assert vertical_light > 0.95 * sp0_light
