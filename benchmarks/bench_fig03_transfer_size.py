"""Figure 3: the effect of transfer size.

Paper claims (Section 4.1): throughput rises steeply with block size up
to ~16 MB; halving 16 MB to 8 MB costs nearly a factor of 2; at 16 MB
the effective rate exceeds 30% of the drive's streaming rate.
"""

import pytest

from repro.experiments.figures import figure3
from repro.tape import EXB_8505XL

from _util import HORIZON_S, show, regenerate

#: Streaming transfer rate of the modelled drive, KB/s.
STREAMING_KB_S = 1024.0 / EXB_8505XL.read_s_per_mb


@pytest.mark.benchmark(group="fig03")
def test_fig03_transfer_size(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure3,
        horizon_s=HORIZON_S,
        block_sizes_mb=(1, 2, 4, 8, 16, 32, 64),
        queue_lengths=(20, 60, 100, 140),
    )
    show(capsys, data)

    for label, points in data.series.items():
        throughput = {size: kb_s for size, kb_s in points}
        # Monotone increasing in transfer size across the studied range.
        sizes = sorted(throughput)
        values = [throughput[size] for size in sizes]
        assert values == sorted(values), f"{label}: not monotone in size"
        # 8 MB -> 16 MB roughly doubles performance (paper: "nearly a
        # factor of 2"); accept 1.5x..2.5x.
        ratio = throughput[16] / throughput[8]
        assert 1.5 < ratio < 2.5, f"{label}: 16/8 MB ratio {ratio:.2f}"
        # At 16 MB the effective rate exceeds 30% of streaming at the
        # heavier workloads.
        if label in ("Q-100", "Q-140"):
            assert throughput[16] > 0.30 * STREAMING_KB_S, label
        # 1 MB blocks starve the system (< 10% of streaming).
        assert throughput[1] < 0.10 * STREAMING_KB_S, label
