"""Extension benchmark: multi-drive jukeboxes (the paper's future work).

Not a paper figure — the paper studies single-drive jukeboxes and
defers multiple drives to future work.  This bench quantifies what that
future work buys: throughput and delay versus the number of drives
sharing one robot arm and one tape pool, at a fixed closed-queueing
population.
"""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.layout import PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import MetricsCollector, MultiDriveSimulator
from repro.workload import ClosedSource, HotColdSkew

from _util import HORIZON_S

BLOCK = 16.0
CAPACITY = 7 * 1024.0
QUEUE = 60


def run_with_drives(drive_count: int):
    catalog = build_catalog(
        PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, CAPACITY
    )
    source = ClosedSource(QUEUE, HotColdSkew(40.0), catalog, random.Random(17))
    simulator = MultiDriveSimulator(
        env=Environment(),
        catalog=catalog,
        source=source,
        metrics=MetricsCollector(block_mb=BLOCK, warmup_s=HORIZON_S * 0.1),
        scheduler_factory=lambda: make_scheduler("dynamic-max-bandwidth"),
        drive_count=drive_count,
    )
    return simulator.run(HORIZON_S)


@pytest.mark.benchmark(group="multidrive")
def test_multidrive_scaling(benchmark, capsys):
    def sweep():
        return {drives: run_with_drives(drives) for drives in (1, 2, 4)}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            drives,
            report.throughput_kb_s,
            report.requests_per_min,
            report.mean_response_s,
            report.switches_per_hour,
        )
        for drives, report in sorted(reports.items())
    ]
    with capsys.disabled():
        print("\nMulti-drive extension: dynamic-max-bandwidth, PH-10 RH-40, Q-60")
        print(
            format_table(
                ("drives", "KB/s", "req/min", "delay_s", "switch/h"), rows
            )
        )

    # More drives always help throughput and delay.
    assert reports[2].throughput_kb_s > reports[1].throughput_kb_s
    assert reports[4].throughput_kb_s > reports[2].throughput_kb_s
    assert reports[4].mean_response_s < reports[1].mean_response_s
