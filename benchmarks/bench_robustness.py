"""Robustness checks the paper asserts in passing.

1. **5-tape jukebox (Section 4.8).**  "Additional experimentation based
   on jukeboxes holding 5 tapes rather than 10 show similar results":
   the cost-performance crossover (replication pays per dollar only at
   high skew) must survive shrinking the jukebox.
2. **Faster drive (Section 2.1).**  "Changing the locate, read, and
   tape switch functions to model a higher-performance system naturally
   improves the simulated system performance, but does not materially
   alter our results about choice of scheduling algorithm, the amount
   of replication, and the data placement."
3. **Noisy hardware (Section 2.1).**  The paper's drive measurements
   "exhibit a significant variance"; schedulers plan with the fitted
   model regardless.  The envelope-over-dynamic win must survive a
   drive whose actual operation times deviate from the model.
4. **Fault tolerance (extension).**  The paper replicates data for
   *performance*; the same copies buy *availability*.  Under injected
   soft errors and permanently bad regions (see repro.faults), a
   replicated layout must sustain a strictly higher served-request
   fraction than NR-0.
"""

import random

import pytest

from repro.analysis import cost_performance_curve
from repro.core import make_scheduler
from repro.des import Environment
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import EXB_8505XL, Jukebox, NoisyTimingModel, RobotArm, TapeDrive, TapePool
from repro.workload import ClosedSource, HotColdSkew

from _util import HORIZON_S


@pytest.mark.benchmark(group="robustness")
def test_five_tape_jukebox_costperf(benchmark, capsys):
    def curves():
        results = {}
        for skew in (20.0, 80.0):
            results[skew] = cost_performance_curve(
                horizon_s=HORIZON_S,
                percent_requests_hot=skew,
                replica_counts=(0, 4),  # full replication on 5 tapes
                base_queue_length=60,
                tape_count=5,
            )
        return results

    results = benchmark.pedantic(curves, rounds=1, iterations=1)
    low_skew = dict(results[20.0])
    high_skew = dict(results[80.0])
    with capsys.disabled():
        print(
            f"\n5-tape jukebox cost-performance (NR-4 = full): "
            f"RH-20 {low_skew[4]:.3f}, RH-80 {high_skew[4]:.3f}"
        )
    # Same story as the 10-tape jukebox: high skew pays, low skew does not.
    assert high_skew[4] > low_skew[4]
    assert high_skew[4] > 0.99
    assert low_skew[4] < 1.05


@pytest.mark.benchmark(group="robustness")
def test_faster_drive_preserves_conclusions(benchmark, capsys):
    """A 3x faster drive: everything speeds up, every ordering survives."""

    def run_grid():
        grid = {}
        for speedup in (1.0, 3.0):
            for label, overrides in (
                ("dyn NR-0 SP-0", dict(scheduler="dynamic-max-bandwidth")),
                (
                    "dyn NR-9 SP-1",
                    dict(
                        scheduler="dynamic-max-bandwidth",
                        layout=Layout.VERTICAL,
                        replicas=9,
                        start_position=1.0,
                    ),
                ),
                (
                    "env NR-9 SP-1",
                    dict(
                        scheduler="envelope-max-bandwidth",
                        layout=Layout.VERTICAL,
                        replicas=9,
                        start_position=1.0,
                    ),
                ),
                (
                    "dyn NR-9 SP-0",
                    dict(
                        scheduler="dynamic-max-bandwidth",
                        layout=Layout.VERTICAL,
                        replicas=9,
                        start_position=0.0,
                    ),
                ),
            ):
                config = ExperimentConfig(
                    queue_length=60,
                    horizon_s=HORIZON_S,
                    drive_speedup=speedup,
                    **overrides,
                )
                grid[(speedup, label)] = run_experiment(config).throughput_kb_s
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = [
        (f"{speedup:g}x", label, throughput)
        for (speedup, label), throughput in sorted(grid.items())
    ]
    with capsys.disabled():
        print("\nfaster-drive sensitivity (Q-60):")
        print(format_table(("drive", "config", "KB/s"), rows))

    for speedup in (1.0, 3.0):
        # Replication helps; envelope beats dynamic; SP-1 beats SP-0
        # when replicated — at either drive speed.
        assert grid[(speedup, "dyn NR-9 SP-1")] > grid[(speedup, "dyn NR-0 SP-0")]
        assert grid[(speedup, "env NR-9 SP-1")] > grid[(speedup, "dyn NR-9 SP-1")]
        assert grid[(speedup, "dyn NR-9 SP-1")] > 0.97 * grid[(speedup, "dyn NR-9 SP-0")]
    # And the fast drive really is faster across the board.
    for label in ("dyn NR-0 SP-0", "env NR-9 SP-1"):
        assert grid[(3.0, label)] > 2.0 * grid[(1.0, label)]


def _run_noisy(scheduler_name: str, seed: int):
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=9,
        start_position=1.0, block_mb=16.0,
    )
    catalog = build_catalog(spec, 10, 7 * 1024.0)
    timing = NoisyTimingModel(
        EXB_8505XL, random.Random(seed), locate_amplitude=0.02, read_amplitude=0.10
    )
    pool = TapePool.uniform(10, 7 * 1024.0)
    jukebox = Jukebox(
        pool=pool,
        drive=TapeDrive(timing=timing),
        robot=RobotArm(timing=timing, slot_count=10),
    )
    simulator = JukeboxSimulator(
        env=Environment(),
        jukebox=jukebox,
        catalog=catalog,
        scheduler=make_scheduler(scheduler_name),
        source=ClosedSource(60, HotColdSkew(40.0), catalog, random.Random(seed + 1)),
        metrics=MetricsCollector(block_mb=16.0, warmup_s=HORIZON_S * 0.1),
    )
    return simulator.run(HORIZON_S).throughput_kb_s


@pytest.mark.benchmark(group="robustness")
def test_noisy_hardware_preserves_envelope_win(benchmark, capsys):
    """Model-based scheduling against hardware that deviates from the
    model: the envelope's advantage over dynamic persists."""

    def run_pair():
        return (
            _run_noisy("dynamic-max-bandwidth", seed=31),
            _run_noisy("envelope-max-bandwidth", seed=31),
        )

    dynamic, envelope = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nnoisy hardware (±2% locate, ±10% read): dynamic "
            f"{dynamic:.1f} KB/s vs envelope {envelope:.1f} KB/s "
            f"({envelope / dynamic - 1:+.1%})"
        )
    assert envelope > 1.02 * dynamic


def _run_faulted(
    replicas: int,
    media_error_rate: float,
    bad_replica_rate: float = 0.0,
    percent_requests_hot: float = 40.0,
):
    config = ExperimentConfig(
        scheduler="dynamic-max-bandwidth",
        layout=Layout.VERTICAL if replicas else Layout.HORIZONTAL,
        replicas=replicas,
        start_position=1.0 if replicas else 0.0,
        percent_requests_hot=percent_requests_hot,
        queue_length=60,
        horizon_s=HORIZON_S,
        faults=FaultConfig(
            media_error_rate=media_error_rate,
            bad_replica_rate=bad_replica_rate,
            seed=101,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=2.0),
        ),
    )
    return run_experiment(config).report


@pytest.mark.benchmark(group="robustness")
def test_soft_error_degradation(benchmark, capsys):
    """Response time and served fraction vs transient soft-error rate.

    Each retry burns drive time (re-read + backoff), so the delay curve
    rises with the error rate; replication keeps the served fraction up
    when a copy's retry budget runs dry.
    """

    rates = (0.0, 0.02, 0.1)
    degrees = (0, 4, 9)

    def sweep():
        return {
            (replicas, rate): _run_faulted(replicas, rate)
            for replicas in degrees
            for rate in rates
        }

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            f"NR-{replicas}",
            f"{rate:g}",
            f"{report.mean_response_s:.1f}",
            f"{report.served_fraction:.4f}",
            report.retries,
            report.failovers,
        )
        for (replicas, rate), report in sorted(grid.items())
    ]
    with capsys.disabled():
        print("\nsoft-error degradation (dynamic-max-bandwidth, Q-60):")
        print(
            format_table(
                ("replicas", "err_rate", "delay_s", "served_frac",
                 "retries", "failovers"),
                rows,
            )
        )

    for replicas in degrees:
        # No faults -> nothing fails, no fault work is recorded.
        clean = grid[(replicas, 0.0)]
        assert clean.served_fraction == 1.0
        assert clean.retries == 0 and clean.failovers == 0
        # Retries are real drive work: delay climbs with the error rate.
        assert (
            grid[(replicas, 0.1)].mean_response_s
            > grid[(replicas, 0.0)].mean_response_s
        )
        assert grid[(replicas, 0.1)].retries > grid[(replicas, 0.02)].retries > 0


@pytest.mark.benchmark(group="robustness")
def test_replication_sustains_availability(benchmark, capsys):
    """NR > 0 serves strictly more under permanently bad regions.

    With single copies (NR-0) every discovered bad region loses its
    requests; with replicas the recovery layer fails over to a
    surviving copy instead.  Only hot blocks carry replicas (the paper
    replicates hot data), so the workload here is hot-dominated
    (RH-100) to measure what the copies actually buy.
    """

    def sweep():
        return {
            replicas: _run_faulted(
                replicas,
                media_error_rate=0.01,
                bad_replica_rate=0.03,
                percent_requests_hot=100.0,
            )
            for replicas in (0, 4, 9)
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            f"NR-{replicas}",
            report.completed,
            report.failed_requests,
            f"{report.served_fraction:.4f}",
            report.failovers,
            report.fault_counts.get("bad-block", 0),
        )
        for replicas, report in sorted(reports.items())
    ]
    with capsys.disabled():
        print("\navailability under 3% bad regions (dynamic-max-bandwidth, Q-60):")
        print(
            format_table(
                ("replicas", "completed", "failed", "served_frac",
                 "failovers", "bad_blocks"),
                rows,
            )
        )

    # The acceptance bar: replication buys availability, strictly.
    assert reports[4].served_fraction > reports[0].served_fraction
    assert reports[9].served_fraction > reports[0].served_fraction
    # The counters behind the story are visible in the report.
    assert reports[0].fault_counts.get("bad-block", 0) > 0
    assert reports[0].failed_requests > 0
    assert reports[4].failovers > 0
