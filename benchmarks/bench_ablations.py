"""Ablation benchmarks for design choices called out in DESIGN.md.

1. **Envelope shrink step (Section 3.2, step 5).**  Disabling the
   shrink leaves replicated edge blocks scheduled on expensive tapes
   after a cheaper copy becomes reachable; the full algorithm should be
   at least as good, and the shrink must never hurt.
2. **Dynamic insertion (the incremental scheduler).**  The only
   difference between the static and dynamic families; quantifies its
   value at heavy load.
3. **Serpentine geometry (extension).**  The paper restricts itself to
   single-pass tape; the serpentine model shows how its placement
   conclusions would compress: positioning cost is nearly independent
   of logical position, so the SP-0 vs SP-1 spread collapses.
"""

import random

import pytest

from repro.core import EnvelopeScheduler, MaxBandwidth
from repro.des import Environment
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew

from _util import HORIZON_S

BLOCK = 16.0
CAPACITY = 7 * 1024.0


def run_envelope(enable_shrink: bool, queue_length: int = 100):
    # Partial replication: with FULL replication every extension target
    # is a non-replicated cold block, so step 5 never fires at all; the
    # shrink only has work to do when replicated blocks can sit at an
    # envelope's outer edge.
    spec = PlacementSpec(
        layout=Layout.VERTICAL,
        percent_hot=10,
        replicas=4,
        start_position=1.0,
        block_mb=BLOCK,
    )
    catalog = build_catalog(spec, 10, CAPACITY)
    jukebox = Jukebox.build()
    source = ClosedSource(
        queue_length, HotColdSkew(70.0), catalog, random.Random(42)
    )
    simulator = JukeboxSimulator(
        env=Environment(),
        jukebox=jukebox,
        catalog=catalog,
        scheduler=EnvelopeScheduler(MaxBandwidth(), enable_shrink=enable_shrink),
        source=source,
        metrics=MetricsCollector(block_mb=BLOCK, warmup_s=HORIZON_S * 0.1),
    )
    return simulator.run(HORIZON_S)


@pytest.mark.benchmark(group="ablation")
def test_ablation_envelope_shrink_step(benchmark, capsys):
    def run_pair():
        return run_envelope(True), run_envelope(False)

    with_shrink, without_shrink = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nenvelope shrink ablation (NR-4 SP-1 RH-70 Q-100): "
            f"with {with_shrink.throughput_kb_s:.1f} KB/s vs "
            f"without {without_shrink.throughput_kb_s:.1f} KB/s"
        )
    # Measured finding: in steady-state closed workloads the shrink is a
    # tie-breaker-level refinement — the two variants land within ~2% of
    # each other (either direction).  Assert that near-equivalence; a
    # larger gap in either direction would signal a regression in the
    # envelope bookkeeping.
    ratio = with_shrink.throughput_kb_s / without_shrink.throughput_kb_s
    assert 0.97 < ratio < 1.03, f"shrink ablation ratio {ratio:.3f}"


@pytest.mark.benchmark(group="ablation")
def test_ablation_dynamic_insertion(benchmark, capsys):
    """Static vs dynamic max-bandwidth at heavy load isolates the value
    of inserting arrivals into the in-progress sweep."""

    def run_pair():
        results = {}
        for scheduler in ("static-max-bandwidth", "dynamic-max-bandwidth"):
            results[scheduler] = run_experiment(
                ExperimentConfig(
                    scheduler=scheduler, queue_length=140, horizon_s=HORIZON_S
                )
            ).report
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    static = results["static-max-bandwidth"]
    dynamic = results["dynamic-max-bandwidth"]
    with capsys.disabled():
        print(
            f"\ndynamic-insertion ablation (Q-140): static "
            f"{static.throughput_kb_s:.1f} KB/s, dynamic "
            f"{dynamic.throughput_kb_s:.1f} KB/s "
            f"({dynamic.throughput_kb_s / static.throughput_kb_s - 1:+.1%})"
        )
    assert dynamic.throughput_kb_s > static.throughput_kb_s


@pytest.mark.benchmark(group="ablation")
def test_ablation_sweep_vs_nearest_neighbor(benchmark, capsys):
    """The paper fixes the intra-tape order to a sweep (SCAN).  Greedy
    nearest-neighbor (SSTF) squeezes out slightly more throughput by
    exploiting short locates, at the cost of fatter response-time tails
    — the classic SCAN/SSTF trade, reproduced on tape."""
    from repro.core import DynamicScheduler, MaxBandwidth
    from repro.workload import HotColdSkew as _Skew

    def run_ordering(ordering):
        catalog = build_catalog(
            PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, CAPACITY
        )
        simulator = JukeboxSimulator(
            env=Environment(),
            jukebox=Jukebox.build(),
            catalog=catalog,
            scheduler=DynamicScheduler(MaxBandwidth(), ordering=ordering),
            source=ClosedSource(140, _Skew(40.0), catalog, random.Random(42)),
            metrics=MetricsCollector(block_mb=BLOCK, warmup_s=HORIZON_S * 0.1),
        )
        return simulator.run(HORIZON_S)

    def run_pair():
        return run_ordering("sweep"), run_ordering("nearest")

    sweep, nearest = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nintra-tape ordering ablation (Q-140): sweep "
            f"{sweep.throughput_kb_s:.1f} KB/s p95 {sweep.p95_response_s:,.0f}s | "
            f"nearest {nearest.throughput_kb_s:.1f} KB/s p95 "
            f"{nearest.p95_response_s:,.0f}s"
        )
    # Throughputs stay within a few percent of each other...
    ratio = nearest.throughput_kb_s / sweep.throughput_kb_s
    assert 0.95 < ratio < 1.10, ratio
    # ...so the sweep gives up little for its bounded, fair order.


@pytest.mark.benchmark(group="ablation")
def test_ablation_serpentine_placement_insensitivity(benchmark, capsys):
    """On serpentine tape the paper's placement lever loses its force:
    the SP-0 vs SP-1 throughput spread collapses versus helical."""

    def run_grid():
        grid = {}
        for technology in ("helical", "serpentine"):
            for start_position in (0.0, 1.0):
                config = ExperimentConfig(
                    drive_technology=technology,
                    start_position=start_position,
                    queue_length=60,
                    horizon_s=HORIZON_S,
                )
                grid[(technology, start_position)] = run_experiment(
                    config
                ).throughput_kb_s
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    helical_spread = abs(grid[("helical", 0.0)] - grid[("helical", 1.0)]) / grid[
        ("helical", 0.0)
    ]
    serpentine_spread = abs(
        grid[("serpentine", 0.0)] - grid[("serpentine", 1.0)]
    ) / grid[("serpentine", 0.0)]

    rows = [
        (technology, f"SP-{start_position:g}", throughput)
        for (technology, start_position), throughput in sorted(grid.items())
    ]
    with capsys.disabled():
        print("\nserpentine placement ablation (PH-10 RH-40 NR-0 Q-60):")
        print(format_table(("technology", "placement", "KB/s"), rows))
        print(
            f"placement spread: helical {helical_spread:.1%}, "
            f"serpentine {serpentine_spread:.1%}"
        )
    assert serpentine_spread < helical_spread + 0.01
