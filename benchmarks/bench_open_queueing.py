"""Open-queueing replications of the paper's noted differences.

Sections 4.2, 4.4, and 4.7 all carry the same caveat for the open
model: at high workloads, better algorithms / replication / skew
improve only the *delay* — the throughput is pinned by the exogenous
Poisson arrival rate (a faster server does not generate new requests).
At low workloads the system is arrival-limited for everyone, so the
same pinning holds trivially; the interesting regime is near
saturation, where the queue is long but the better configuration still
completes only what arrives.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.layout import Layout

from _util import HORIZON_S


def open_config(scheduler: str, replicas: int, interarrival_s: float) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler=scheduler,
        layout=Layout.VERTICAL if replicas else Layout.HORIZONTAL,
        replicas=replicas,
        start_position=1.0 if replicas else 0.0,
        queue_length=None,
        mean_interarrival_s=interarrival_s,
        horizon_s=HORIZON_S,
        warmup_fraction=0.2,
    )


@pytest.mark.benchmark(group="open-queueing")
def test_open_high_load_only_delay_improves(benchmark, capsys):
    """Near saturation, envelope+replication vs plain dynamic: completed
    work matches the arrival stream for both, delay separates sharply."""
    interarrival_s = 70.0  # close to the better scheme's service rate

    def run_pair():
        worse = run_experiment(open_config("dynamic-max-bandwidth", 0, interarrival_s))
        better = run_experiment(
            open_config("envelope-max-bandwidth", 9, interarrival_s)
        )
        return worse.report, better.report

    worse, better = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    # Delay improves a lot...
    assert better.mean_response_s < 0.8 * worse.mean_response_s
    # ...throughput cannot exceed the arrival rate, and the arrival
    # processes are identical seeds, so completed counts stay close
    # relative to the delay gap.
    completed_ratio = better.total_completed / worse.total_completed
    delay_ratio = worse.mean_response_s / better.mean_response_s
    assert completed_ratio < delay_ratio
    arrival_rate_per_min = 60.0 / interarrival_s
    assert better.requests_per_min <= arrival_rate_per_min * 1.05

    with capsys.disabled():
        print(
            f"\nopen queueing @ 1/{interarrival_s:g}s arrivals: "
            f"delay {worse.mean_response_s:,.0f}s -> {better.mean_response_s:,.0f}s "
            f"({1 - better.mean_response_s / worse.mean_response_s:+.0%}), "
            f"completed {worse.total_completed} -> {better.total_completed} "
            f"({completed_ratio - 1:+.1%})"
        )


@pytest.mark.benchmark(group="open-queueing")
def test_open_underloaded_throughput_pinned_by_arrivals(benchmark, capsys):
    """Well under capacity, every configuration completes essentially the
    whole arrival stream: throughput is configuration-independent."""
    interarrival_s = 400.0

    def run_three():
        return [
            run_experiment(open_config(scheduler, replicas, interarrival_s)).report
            for scheduler, replicas in (
                ("static-max-bandwidth", 0),
                ("dynamic-max-bandwidth", 0),
                ("envelope-max-bandwidth", 9),
            )
        ]

    reports = benchmark.pedantic(run_three, rounds=1, iterations=1)
    rates = [report.requests_per_min for report in reports]
    assert max(rates) < 1.1 * min(rates), rates
    # But delay still orders the configurations.
    delays = [report.mean_response_s for report in reports]
    assert delays[2] < delays[1] <= delays[0] * 1.05

    with capsys.disabled():
        print(
            f"\nunderloaded open queueing: req/min {['%.3f' % r for r in rates]}, "
            f"delays {['%.0f' % d for d in delays]} s"
        )
