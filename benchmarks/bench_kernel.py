"""Kernel/scheduler performance benchmark: the BENCH trajectory for speed.

Measures, and records into ``BENCH_kernel.json`` at the repository root:

1. **Raw DES kernel.**  Events per wall-clock second through the full
   schedule-and-drain cycle — bare timeouts (no callbacks) and
   generator processes sleeping repeatedly (the simulator's actual
   idiom; uses the bare-float fast path when the kernel supports it).
2. **Scheduler families end-to-end.**  One closed-queueing run per
   family (FIFO / static / dynamic / envelope) on the paper's jukebox;
   wall-clock seconds, simulated-seconds per wall-second, and completed
   requests per wall-second.
3. **Figure-4 end-to-end workload.**  The four-family subset of the
   Figure-4 sweep (three queue lengths each) as one wall-clock number —
   the headline end-to-end metric.
4. **Envelope-compute scaling.**  Best-of-three wall-clock of one
   envelope major reschedule at n = 35/140/560 pending requests
   (t = 10 tapes, NR-9), and requests scheduled per second.
5. **Envelope incremental steady state.**  The same reschedule under
   churn (arrivals + sweep completions between decisions) through an
   :class:`~repro.core.EnvelopeIndex`-maintained pending list, versus
   the identical churn sequence through the full rebuild path — the
   per-decision throughput the scheduler actually sees mid-run, and
   the same-machine incremental/full ratio the CI gate checks.

The file keeps two measurement sets: ``baseline`` (recorded once, on
the pre-optimization tree, via ``--record-baseline``) and ``current``
(refreshed on every default run), plus the derived ``speedup`` section.
CI runs ``--quick --check BENCH_kernel.json`` and fails when the fresh
kernel events/sec falls more than 30% below the committed baseline.

Runs standalone (``python benchmarks/bench_kernel.py``) with no pytest
dependency.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernel.json"
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import EnvelopeComputer, EnvelopeIndex, PendingList  # noqa: E402
from repro.des import Environment  # noqa: E402
from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.layout import Layout, PlacementSpec, build_catalog  # noqa: E402
from repro.tape import EXB_8505XL  # noqa: E402
from repro.workload import HotColdSkew, RequestFactory  # noqa: E402

SCHEMA = "bench-kernel/2"

#: Older payloads whose baseline section is still comparable (v2 only
#: added the ``envelope_incremental`` section to ``current``).
COMPATIBLE_SCHEMAS = (SCHEMA, "bench-kernel/1")

#: The four-family subset of Figure 4 used for the end-to-end number.
FIG4_FAMILIES = (
    "fifo",
    "static-max-bandwidth",
    "dynamic-max-bandwidth",
    "envelope-max-bandwidth",
)


# ----------------------------------------------------------------------
# 1. Raw DES kernel
# ----------------------------------------------------------------------
def bench_timeout_cycles(n: int, repeats: int = 3, batch: int = 10_000) -> float:
    """Events/sec through full schedule-then-drain cycles of bare timeouts.

    Scheduling is part of the cycle on purpose: the simulator never
    drains a pre-built heap, it interleaves ``env.timeout`` allocation
    with ``run()`` dispatch, and both halves are on the hot path.
    """
    best = 0.0
    batches = max(1, n // batch)
    for _ in range(repeats):
        env = Environment()
        start = time.perf_counter()
        for _ in range(batches):
            for index in range(batch):
                env.timeout(float(index % 97))
            env.run()
        elapsed = time.perf_counter() - start
        best = max(best, batches * batch / elapsed)
    return best


def _float_yields_supported() -> bool:
    """True when the kernel accepts bare-float delays from processes."""

    def probe(env: Environment):
        yield 1.0

    env = Environment()
    env.process(probe(env))
    try:
        env.run()
    except TypeError:
        return False
    return True


def bench_process_timeouts(processes: int, events: int, repeats: int = 3) -> float:
    """Events/sec of ``processes`` generator processes sleeping in a loop.

    Uses the simulator's idiom on the tree under measurement: bare
    float delays where the kernel supports them (the allocation-free
    fast path), ``env.timeout`` otherwise — so the same script records
    an honest baseline on the pre-optimization tree.
    """
    if _float_yields_supported():

        def worker(env: Environment, count: int):
            for _ in range(count):
                yield 1.0

    else:

        def worker(env: Environment, count: int):
            for _ in range(count):
                yield env.timeout(1.0)

    total = processes * events
    best = 0.0
    for _ in range(repeats):
        env = Environment()
        for _ in range(processes):
            env.process(worker(env, events))
        start = time.perf_counter()
        env.run()
        best = max(best, total / (time.perf_counter() - start))
    return best


# ----------------------------------------------------------------------
# 2/3. End-to-end scheduler runs
# ----------------------------------------------------------------------
def _fig4_config(scheduler: str, queue: int, horizon_s: float) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler=scheduler, queue_length=queue, horizon_s=horizon_s
    )


def _fig8_config(scheduler: str, queue: int, horizon_s: float) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler=scheduler,
        layout=Layout.VERTICAL,
        replicas=9,
        start_position=1.0,
        queue_length=queue,
        horizon_s=horizon_s,
    )


def bench_schedulers(horizon_s: float, queue: int) -> dict:
    """Per-family wall-clock of one closed run (replicated for envelope)."""
    out = {}
    for scheduler in FIG4_FAMILIES:
        if scheduler.startswith("envelope"):
            config = _fig8_config(scheduler, queue, horizon_s)
        else:
            config = _fig4_config(scheduler, queue, horizon_s)
        start = time.perf_counter()
        result = run_experiment(config)
        wall_s = time.perf_counter() - start
        out[scheduler] = {
            "wall_s": round(wall_s, 4),
            "sim_s_per_wall_s": round(horizon_s / wall_s, 1),
            "completions_per_wall_s": round(result.report.completed / wall_s, 1),
            "sweeps_per_wall_s": round(result.report.tape_switches / wall_s, 2),
        }
    return out


def bench_fig4_end_to_end(horizon_s: float, queues, repeats: int = 3) -> dict:
    """Wall-clock of the four-family Figure-4 grid run back to back.

    Best of ``repeats`` passes: the first pass pays one-time costs
    (imports, catalog construction) that are not what this benchmark
    measures, and min-of-N suppresses scheduler noise on shared machines.
    """
    best_s = None
    completed = 0
    for _ in range(repeats):
        start = time.perf_counter()
        completed = 0
        for scheduler in FIG4_FAMILIES:
            for queue in queues:
                config = _fig4_config(scheduler, queue, horizon_s)
                completed += run_experiment(config).report.completed
        wall_s = time.perf_counter() - start
        if best_s is None or wall_s < best_s:
            best_s = wall_s
    return {
        "wall_s": round(best_s, 4),
        "horizon_s": horizon_s,
        "queues": list(queues),
        "completed": completed,
        "points": len(FIG4_FAMILIES) * len(queues),
    }


# ----------------------------------------------------------------------
# 4. Envelope-compute scaling
# ----------------------------------------------------------------------
def bench_envelope_scaling(sizes, repeats: int = 3) -> dict:
    tapes = 10
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=9, start_position=1.0
    )
    catalog = build_catalog(spec, tapes, 7 * 1024.0)
    skew = HotColdSkew(40.0)
    out = {}
    for size in sizes:
        import random

        rng = random.Random(7)
        factory = RequestFactory()
        requests = [
            factory.create(block_id=skew.draw_block(rng, catalog), arrival_s=0.0)
            for _ in range(size)
        ]
        computer = EnvelopeComputer(
            timing=EXB_8505XL,
            catalog=catalog,
            tape_count=tapes,
            mounted_id=0,
            head_mb=0.0,
        )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            computer.compute(requests)
            best = min(best, time.perf_counter() - start)
        out[str(size)] = {
            "wall_s": round(best, 5),
            "requests_per_s": round(size / best, 1),
        }
    return out


# ----------------------------------------------------------------------
# 5. Envelope incremental steady state
# ----------------------------------------------------------------------
def _churned_decisions(
    size: int, decisions: int, churn: int, use_index: bool
) -> list:
    """Per-decision wall-clocks of major reschedules under churn.

    Between decisions (untimed — it is workload bookkeeping, not
    scheduling cost) each cycle retires ``churn`` pending requests (a
    sweep finishing) and admits ``churn`` fresh arrivals.  The timed
    region is the decision path the scheduler actually pays per major
    reschedule: ``pending.snapshot()`` plus the envelope compute —
    either through an :class:`EnvelopeIndex` kept current by the
    pending list's listener protocol (dirty-tape merge included), or
    through the full rebuild-per-compute path over the identical
    request sequence.
    """
    import random

    tapes = 10
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=9, start_position=1.0
    )
    catalog = build_catalog(spec, tapes, 7 * 1024.0)
    skew = HotColdSkew(40.0)
    rng = random.Random(7)
    factory = RequestFactory()

    def arrival() -> object:
        return factory.create(
            block_id=skew.draw_block(rng, catalog), arrival_s=0.0
        )

    pending = PendingList(catalog)
    for _ in range(size):
        pending.append(arrival())
    index = EnvelopeIndex(pending) if use_index else None
    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=tapes,
        mounted_id=0,
        head_mb=0.0,
    )

    walls = []
    for _ in range(decisions):
        retired = rng.sample(pending.snapshot(), churn)
        pending.remove_many(retired)
        for _ in range(churn):
            pending.append(arrival())
        start = time.perf_counter()
        computer.compute(pending.snapshot(), index=index)
        walls.append(time.perf_counter() - start)
    if index is not None:
        index.detach()
    return walls


def bench_envelope_incremental(sizes, decisions: int = 30, churn: int = 8) -> dict:
    """Indexed reschedule throughput under churn, vs the full path.

    Both paths replay the identical churn sequence (same seed), so the
    ``speedup_vs_full`` ratio is machine-independent — that ratio, not
    an absolute wall time, is what the perf CI gates on.

    ``wall_s``/``requests_per_s`` follow :func:`bench_envelope_scaling`'s
    best-of methodology (the fastest single decision) so the headline
    is directly comparable to the ``envelope_compute`` trajectory;
    ``steady_wall_s``/``steady_requests_per_s`` are the mean over all
    decisions and include the drag of lazily tombstoned rows between
    compactions — what a long run actually sees.
    """
    out = {}
    for size in sizes:
        full = []
        incremental = []
        for _ in range(2):
            full.extend(_churned_decisions(size, decisions, churn, use_index=False))
            incremental.extend(
                _churned_decisions(size, decisions, churn, use_index=True)
            )
        best = min(incremental)
        steady = sum(incremental) / len(incremental)
        out[str(size)] = {
            "wall_s": round(best, 5),
            "full_wall_s": round(min(full), 5),
            "steady_wall_s": round(steady, 5),
            "requests_per_s": round(size / best, 1),
            "steady_requests_per_s": round(size / steady, 1),
            "speedup_vs_full": round(min(full) / best, 2),
        }
    return out


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def measure(quick: bool) -> dict:
    if quick:
        kernel = {
            "timeout_cycle_events_per_s": round(bench_timeout_cycles(50_000, 2), 1),
            "process_timeout_events_per_s": round(
                bench_process_timeouts(50, 1000, 2), 1
            ),
        }
        schedulers = bench_schedulers(horizon_s=40_000.0, queue=60)
        fig4 = bench_fig4_end_to_end(horizon_s=30_000.0, queues=(20, 60))
        envelope = bench_envelope_scaling((35, 140))
        incremental = bench_envelope_incremental((140,), decisions=15)
    else:
        kernel = {
            "timeout_cycle_events_per_s": round(bench_timeout_cycles(200_000), 1),
            "process_timeout_events_per_s": round(
                bench_process_timeouts(100, 2000), 1
            ),
        }
        schedulers = bench_schedulers(horizon_s=100_000.0, queue=100)
        fig4 = bench_fig4_end_to_end(horizon_s=60_000.0, queues=(20, 60, 100))
        envelope = bench_envelope_scaling((35, 140, 560))
        incremental = bench_envelope_incremental((35, 140, 560))
    return {
        "quick": quick,
        "kernel": kernel,
        "schedulers": schedulers,
        "fig4_end_to_end": fig4,
        "envelope_compute": envelope,
        "envelope_incremental": incremental,
    }


#: Headline kernel metric used for speedup and the CI regression gate:
#: the process idiom is what every simulated second actually exercises.
def _events_per_s(measurement: dict) -> float:
    return measurement["kernel"]["process_timeout_events_per_s"]


def _speedup(baseline: dict, current: dict) -> dict:
    out = {}
    out["kernel_events_per_s"] = round(
        _events_per_s(current) / _events_per_s(baseline), 2
    )
    out["timeout_cycle_events_per_s"] = round(
        current["kernel"]["timeout_cycle_events_per_s"]
        / baseline["kernel"]["timeout_cycle_events_per_s"],
        2,
    )
    if baseline.get("quick") == current.get("quick"):
        out["fig4_end_to_end"] = round(
            baseline["fig4_end_to_end"]["wall_s"]
            / current["fig4_end_to_end"]["wall_s"],
            2,
        )
        shared = set(baseline["envelope_compute"]) & set(current["envelope_compute"])
        out["envelope_compute"] = {
            size: round(
                baseline["envelope_compute"][size]["wall_s"]
                / current["envelope_compute"][size]["wall_s"],
                2,
            )
            for size in sorted(shared, key=int)
        }
        # The acceptance headline: steady-state indexed throughput vs
        # the baseline's full-rebuild-per-decision rate, per queue size.
        incremental = current.get("envelope_incremental", {})
        shared = set(baseline["envelope_compute"]) & set(incremental)
        if shared:
            out["envelope_incremental_vs_baseline"] = {
                size: round(
                    incremental[size]["requests_per_s"]
                    / baseline["envelope_compute"][size]["requests_per_s"],
                    2,
                )
                for size in sorted(shared, key=int)
            }
    return out


def check_regression(payload_path: Path, fresh: dict, tolerance: float) -> int:
    """Fail (nonzero) when fresh kernel events/sec regressed vs baseline."""
    committed = json.loads(payload_path.read_text())
    failed = False
    floor = _events_per_s(committed["baseline"]) * (1.0 - tolerance)
    fresh_rate = _events_per_s(fresh)
    print(
        f"perf gate: fresh kernel {fresh_rate:,.0f} ev/s vs committed "
        f"baseline floor {floor:,.0f} ev/s "
        f"(baseline {_events_per_s(committed['baseline']):,.0f} "
        f"- {tolerance:.0%} tolerance)"
    )
    if fresh_rate < floor:
        print("perf gate: FAIL — kernel events/sec regressed past tolerance")
        failed = True
    # Envelope incremental gate is a same-machine ratio (indexed path
    # vs full rebuild over the identical churn), so runner speed
    # cancels out; only the committed ratio minus tolerance remains.
    fresh_incremental = fresh.get("envelope_incremental", {})
    committed_incremental = committed.get("current", {}).get(
        "envelope_incremental", {}
    )
    for size in sorted(set(fresh_incremental) & set(committed_incremental), key=int):
        fresh_ratio = fresh_incremental[size]["speedup_vs_full"]
        ratio_floor = committed_incremental[size]["speedup_vs_full"] * (
            1.0 - tolerance
        )
        print(
            f"perf gate: envelope incremental n={size} "
            f"{fresh_ratio:.2f}x vs full (floor {ratio_floor:.2f}x)"
        )
        if fresh_ratio < ratio_floor:
            print(
                "perf gate: FAIL — envelope incremental ratio regressed "
                "past tolerance"
            )
            failed = True
    if failed:
        return 1
    print("perf gate: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke runs"
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this measurement as the file's baseline section "
        "(run once, on the pre-optimization tree)",
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        default=None,
        help="compare the fresh measurement against FILE's committed "
        "baseline and exit nonzero on >tolerance regression; "
        "does not rewrite FILE",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=str(BENCH_JSON), help="output path"
    )
    args = parser.parse_args(argv)

    fresh = measure(quick=args.quick)
    print(json.dumps(fresh, indent=2))

    if args.check is not None:
        return check_regression(Path(args.check), fresh, args.tolerance)

    output = Path(args.output)
    payload = {"schema": SCHEMA}
    if output.exists():
        previous = json.loads(output.read_text())
        if previous.get("schema") in COMPATIBLE_SCHEMAS:
            payload = previous
    if args.record_baseline or "baseline" not in payload:
        payload["baseline"] = fresh
    payload["current"] = fresh
    payload["speedup"] = _speedup(payload["baseline"], payload["current"])
    payload["schema"] = SCHEMA
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    print("speedup vs baseline:", json.dumps(payload["speedup"], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
