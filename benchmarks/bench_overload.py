"""Overload-control benchmark: shedding keeps p99 bounded at 2x overload.

Three measurements, recorded into ``BENCH_overload.json`` at the
repository root:

1. **Capacity.**  A closed run measures the jukebox's sustainable
   service rate (completions per simulated second).
2. **2x overload, open model.**  Arrivals at twice capacity, once
   unprotected (the queue grows without bound, so does the tail) and
   once behind bounded-queue admission control: the protected run must
   shed a positive fraction of arrivals and hold p99 response time
   strictly below the unprotected tail.
3. **Starvation guard.**  On a hot-skewed closed workload the guard
   must cap the envelope scheduler's worst-case response time while
   forcing a positive number of promotions.

Runs standalone (``python benchmarks/bench_overload.py``) so CI can
exercise it without pytest-benchmark; ``REPRO_BENCH_HORIZON_S`` scales
the simulated horizon as for the figure benchmarks.
"""

import json
import sys
from pathlib import Path

try:
    from _util import HORIZON_S
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _util import HORIZON_S

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.qos import QoSConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_overload.json"

#: Unbounded-queue overload cost grows with the horizon (the pending
#: list the schedulers re-plan over grows linearly), so cap this
#: benchmark's horizon below the figure-benchmark default.
OVERLOAD_HORIZON_S = min(HORIZON_S, 120_000.0)

#: The closed run that defines "capacity" and the open overload runs.
BASE = ExperimentConfig(
    scheduler="dynamic-max-bandwidth",
    tape_count=4,
    capacity_mb=1000.0,
    horizon_s=OVERLOAD_HORIZON_S,
    queue_length=12,
    seed=5,
    warmup_fraction=0.0,
)

#: The starvation-prone closed workload from the guard acceptance test:
#: strong skew concentrates greedy policies on hot tapes.
GUARD_BASE = ExperimentConfig(
    scheduler="envelope-max-bandwidth",
    tape_count=8,
    capacity_mb=1000.0,
    percent_hot=10.0,
    percent_requests_hot=90.0,
    horizon_s=OVERLOAD_HORIZON_S,
    queue_length=40,
    seed=11,
    warmup_fraction=0.0,
)

OVERLOAD_FACTOR = 2.0
MAX_PENDING = 36  # 3x the closed run's queue depth
STARVATION_AGE_S = 3_000.0


def _summary(report) -> dict:
    return {
        "arrivals": report.arrivals,
        "completed": report.completed,
        "p50_response_s": round(report.p50_response_s, 1),
        "p95_response_s": round(report.p95_response_s, 1),
        "p99_response_s": round(report.p99_response_s, 1),
        "max_response_s": round(report.max_response_s, 1),
        "shed_requests": report.shed_requests,
        "shed_fraction": round(
            report.shed_requests / report.arrivals if report.arrivals else 0.0, 4
        ),
        "saturated": report.saturated,
    }


def run_overload_benchmark() -> dict:
    """Run all three measurements and return the JSON payload."""
    capacity_report = run_experiment(BASE).report
    capacity_req_s = capacity_report.completed / OVERLOAD_HORIZON_S
    interarrival_s = 1.0 / (OVERLOAD_FACTOR * capacity_req_s)

    open_base = BASE.with_(
        queue_length=None, mean_interarrival_s=interarrival_s
    )
    unprotected = run_experiment(open_base).report
    protected = run_experiment(
        open_base.with_(
            qos=QoSConfig(admission="bounded-queue", max_pending=MAX_PENDING)
        )
    ).report

    unguarded = run_experiment(GUARD_BASE).report
    guarded = run_experiment(
        GUARD_BASE.with_(qos=QoSConfig(starvation_age_s=STARVATION_AGE_S))
    ).report

    return {
        "horizon_s": OVERLOAD_HORIZON_S,
        "overload_factor": OVERLOAD_FACTOR,
        "capacity_req_s": round(capacity_req_s, 6),
        "interarrival_s": round(interarrival_s, 3),
        "max_pending": MAX_PENDING,
        "unprotected": _summary(unprotected),
        "protected": _summary(protected),
        "guard": {
            "scheduler": GUARD_BASE.scheduler,
            "starvation_age_s": STARVATION_AGE_S,
            "unguarded_max_response_s": round(unguarded.max_response_s, 1),
            "guarded_max_response_s": round(guarded.max_response_s, 1),
            "forced_promotions": guarded.forced_promotions,
        },
    }


def check_payload(payload: dict) -> None:
    """The acceptance bar, shared by the pytest entry and CI's script run."""
    protected = payload["protected"]
    unprotected = payload["unprotected"]
    # Admission control really engaged: a positive shed rate...
    assert protected["shed_requests"] > 0, payload
    assert protected["shed_fraction"] > 0.0, payload
    # ...and the tail it buys: p99 strictly below the unbounded queue's,
    # which keeps growing with the backlog.
    assert protected["p99_response_s"] < unprotected["p99_response_s"], payload
    assert protected["max_response_s"] < unprotected["max_response_s"], payload
    # Admitted work still completes; the protected system is not starved.
    assert protected["completed"] > 0 and not protected["saturated"], payload
    # The guard fires and caps the envelope scheduler's worst case.
    guard = payload["guard"]
    assert guard["forced_promotions"] > 0, payload
    assert (
        guard["guarded_max_response_s"] <= guard["unguarded_max_response_s"]
    ), payload


def _write_and_print(payload: dict) -> None:
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("--- overload control ---")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {BENCH_JSON}")


def main() -> int:
    payload = run_overload_benchmark()
    check_payload(payload)
    _write_and_print(payload)
    return 0


try:
    import pytest
except ImportError:  # script mode without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="overload")
    def test_shedding_bounds_p99_at_2x_overload(benchmark, capsys):
        payload = benchmark.pedantic(
            run_overload_benchmark, rounds=1, iterations=1
        )
        check_payload(payload)
        with capsys.disabled():
            print()
            _write_and_print(payload)


if __name__ == "__main__":
    sys.exit(main())
