"""Figure 9: the relationship between skew and performance improvements.

Paper claims (Section 4.7): more skew uniformly improves throughput and
delay; full replication beats no replication at every skew, by up to
~25% throughput and ~19% response time.
"""

import pytest

from repro.experiments.figures import figure9

from _util import HORIZON_S, QUEUES, mean_delay, mean_throughput, show, regenerate

SKEWS = (20.0, 40.0, 60.0, 80.0)


@pytest.mark.benchmark(group="fig09")
def test_fig09_skew(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure9,
        horizon_s=HORIZON_S,
        skews=SKEWS,
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    replicated = {
        skew: mean_throughput(series[f"RH-{skew:g} NR-9"]) for skew in SKEWS
    }
    plain = {skew: mean_throughput(series[f"RH-{skew:g} NR-0"]) for skew in SKEWS}

    # Increasing skew helps both configurations monotonically.
    for lower, higher in zip(SKEWS, SKEWS[1:]):
        assert replicated[higher] > 0.99 * replicated[lower], ("NR-9", lower, higher)
        assert plain[higher] > 0.99 * plain[lower], ("NR-0", lower, higher)

    # Replication beats no replication at every skew...
    for skew in SKEWS:
        assert replicated[skew] > plain[skew], skew
    # ...with gains growing toward the paper's ~25% at high skew.
    high_gain = replicated[80.0] / plain[80.0] - 1.0
    low_gain = replicated[20.0] / plain[20.0] - 1.0
    assert high_gain > low_gain
    assert high_gain > 0.10, f"high-skew gain only {high_gain:.1%}"

    # Delay improves with replication at high skew as well.
    assert mean_delay(series["RH-80 NR-9"]) < mean_delay(series["RH-80 NR-0"])
