"""Shared settings and helpers for the figure-regeneration benchmarks.

Each ``bench_figXX`` module regenerates one paper figure's series,
asserts the paper's qualitative shape (who wins, roughly by how much,
where crossovers fall), and prints the regenerated rows so they can be
read next to the paper.

``REPRO_BENCH_HORIZON_S`` scales the simulated horizon (default 400 000
simulated seconds per run; the paper used 10 000 000 — shapes are stable
well below that).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.experiments.sweeps import CurvePoint

#: Simulated seconds per run in benchmark mode.
HORIZON_S = float(os.environ.get("REPRO_BENCH_HORIZON_S", "400000"))

#: Queue lengths traced for parametric curves (paper: 20..140 step 20).
QUEUES = (20, 60, 100, 140)


def mean_throughput(points: List[CurvePoint]) -> float:
    """Average throughput across a curve's plotted points."""
    return sum(point.throughput_kb_s for point in points) / len(points)


def mean_delay(points: List[CurvePoint]) -> float:
    """Average mean-response-time across a curve's plotted points."""
    return sum(point.mean_response_s for point in points) / len(points)


def at_queue(points: List[CurvePoint], queue_length: int) -> CurvePoint:
    """The curve point traced at ``queue_length``."""
    for point in points:
        if point.intensity == queue_length:
            return point
    raise KeyError(f"no point at queue length {queue_length}")


def show(capsys, data) -> None:
    """Print a regenerated figure even under pytest output capture."""
    from repro.report import format_figure

    with capsys.disabled():
        print()
        print(format_figure(data))


def regenerate(benchmark, generator, **kwargs):
    """Run ``generator`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(lambda: generator(**kwargs), rounds=1, iterations=1)
