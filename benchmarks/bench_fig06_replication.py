"""Figure 6: throughput and latency versus the number of replicas.

Paper claims (Section 4.4): more replicas uniformly help; full
replication gains ~18% in requests/minute and up to ~13% in response
time over no replication, driven by ~20% fewer tape switches; returns
diminish with each added replica.
"""

import pytest

from repro.experiments.figures import figure6

from _util import HORIZON_S, QUEUES, at_queue, mean_delay, mean_throughput, show, regenerate


@pytest.mark.benchmark(group="fig06")
def test_fig06_replication_of_hot_data(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure6,
        horizon_s=HORIZON_S,
        replica_counts=(0, 1, 2, 4, 9),
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    throughputs = {
        int(label.split("-")[1]): mean_throughput(points)
        for label, points in series.items()
    }
    delays = {
        int(label.split("-")[1]): mean_delay(points)
        for label, points in series.items()
    }

    # More replicas -> better throughput, monotonically (small tolerance
    # for simulation noise between adjacent counts).
    counts = sorted(throughputs)
    for lower, higher in zip(counts, counts[1:]):
        assert throughputs[higher] > 0.99 * throughputs[lower], (lower, higher)
    assert throughputs[9] > throughputs[0]

    # Full replication improves requests/min by roughly the paper's 18%
    # (accept 8%..45%) and response time (accept any clear improvement).
    gain = throughputs[9] / throughputs[0] - 1.0
    assert 0.08 < gain < 0.45, f"full-replication gain {gain:.1%}"
    assert delays[9] < delays[0]

    # Tape switches drop with replication (paper: ~20% fewer).
    switches_0 = at_queue(series["NR-0"], 60).tape_switches_per_hour
    switches_9 = at_queue(series["NR-9"], 60).tape_switches_per_hour
    assert switches_9 < switches_0

    # Diminishing returns: the first replicas buy more than the last.
    early_gain = throughputs[2] - throughputs[0]
    late_gain = throughputs[9] - throughputs[4]
    assert early_gain > 0
    assert late_gain < early_gain * 1.5
