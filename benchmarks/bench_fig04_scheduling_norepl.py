"""Figure 4: relative performance of scheduling algorithms, no replication.

Paper claims (Section 4.2): FIFO is a vertical line (throughput does not
improve with queue length); static algorithms are generally inferior to
dynamic ones at heavy load; dynamic max-bandwidth is a good choice for
all workloads, with max-requests nearly as good.
"""

import pytest

from repro.experiments.figures import FIGURE4_ALGORITHMS, figure4

from _util import HORIZON_S, QUEUES, at_queue, mean_throughput, show, regenerate


@pytest.mark.benchmark(group="fig04")
def test_fig04_scheduling_no_replication(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure4,
        horizon_s=HORIZON_S,
        algorithms=FIGURE4_ALGORITHMS,
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    # FIFO: throughput flat in queue length (vertical line in the paper's
    # parametric plot) and far below everything else.
    fifo = series["fifo"]
    fifo_span = max(p.throughput_kb_s for p in fifo) / min(
        p.throughput_kb_s for p in fifo
    )
    assert fifo_span < 1.15, "FIFO throughput should not grow with queue"
    for name, points in series.items():
        if name != "fifo":
            assert mean_throughput(points) > 2 * mean_throughput(fifo), name

    # FIFO delay explodes linearly with queue length.
    assert at_queue(fifo, 140).mean_response_s > 4 * at_queue(fifo, 20).mean_response_s

    # At heavy load, each dynamic algorithm beats its static counterpart.
    for policy in ("max-requests", "max-bandwidth", "round-robin"):
        static_name, dynamic_name = f"static-{policy}", f"dynamic-{policy}"
        if static_name in series and dynamic_name in series:
            static_heavy = at_queue(series[static_name], 140)
            dynamic_heavy = at_queue(series[dynamic_name], 140)
            assert (
                dynamic_heavy.throughput_kb_s >= 0.98 * static_heavy.throughput_kb_s
            ), policy

    # Dynamic max-bandwidth is within a few percent of the best curve
    # everywhere (the paper's "good for all workloads").
    best_mean = max(
        mean_throughput(points) for name, points in series.items() if name != "fifo"
    )
    assert mean_throughput(series["dynamic-max-bandwidth"]) > 0.93 * best_mean
    # ... and max-requests is nearly as good.
    assert mean_throughput(series["dynamic-max-requests"]) > 0.90 * best_mean
