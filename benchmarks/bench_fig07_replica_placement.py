"""Figure 7: placement of replicas under full replication.

Paper claims (Section 4.5): with replication, hot data and replicas
belong at the *end* of the tape — the opposite of the no-replication
answer — worth about 4% throughput and 3% response time over SP-0.
"""

import pytest

from repro.experiments.figures import figure7

from _util import HORIZON_S, QUEUES, at_queue, mean_throughput, show, regenerate


@pytest.mark.benchmark(group="fig07")
def test_fig07_replica_placement(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure7,
        horizon_s=HORIZON_S,
        start_positions=(0.0, 0.5, 1.0),
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    sp0 = mean_throughput(series["SP-0"])
    sp1 = mean_throughput(series["SP-1"])
    # End placement wins under replication (paper: ~4%; accept >= 1%).
    assert sp1 > 1.01 * sp0, f"SP-1 {sp1:.1f} should beat SP-0 {sp0:.1f}"

    # Delay improves too.
    sp0_delay = at_queue(series["SP-0"], 60).mean_response_s
    sp1_delay = at_queue(series["SP-1"], 60).mean_response_s
    assert sp1_delay < sp0_delay

    # The middle placement lies between the extremes (within noise).
    sp_half = mean_throughput(series["SP-0.5"])
    assert sp0 * 0.97 < sp_half < sp1 * 1.03
