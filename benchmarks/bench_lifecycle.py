"""Extension benchmark: the Section 4.8 filling-lifecycle recommendation.

Executes the paper's closing recommendation end to end: as the jukebox
fills, the planner chooses vertical-plus-replicas-at-the-ends while
spare capacity lasts, overwrites the hot tape near overflow, and
finally recaptures the replica space.  The bench measures throughput at
each fill level under the recommended layout versus a naive layout that
never replicates, quantifying the "for free" improvement from spare
capacity.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.layout.lifecycle import LifecyclePlanner, LifecycleStage
from repro.report import format_table

from _util import HORIZON_S

TAPES = 10
CAPACITY = 7 * 1024.0
FILL_LEVELS = (0.5, 0.7, 0.9, 1.0)


def run_plan(plan, data_blocks):
    config = ExperimentConfig(
        scheduler="envelope-max-bandwidth",
        layout=plan.spec.layout,
        percent_hot=plan.spec.percent_hot,
        replicas=plan.spec.replicas,
        start_position=plan.spec.start_position,
        queue_length=60,
        horizon_s=HORIZON_S,
        data_blocks=data_blocks,
    )
    return run_experiment(config).throughput_kb_s


def run_naive(data_blocks):
    config = ExperimentConfig(
        scheduler="envelope-max-bandwidth",
        replicas=0,
        start_position=0.0,
        queue_length=60,
        horizon_s=HORIZON_S,
        data_blocks=data_blocks,
    )
    return run_experiment(config).throughput_kb_s


@pytest.mark.benchmark(group="lifecycle")
def test_lifecycle_recommendation(benchmark, capsys):
    planner = LifecyclePlanner(tape_count=TAPES, capacity_mb=CAPACITY)

    def sweep():
        rows = []
        for fraction in FILL_LEVELS:
            data_blocks = int(fraction * planner.total_slots)
            plan = planner.plan(data_blocks)
            recommended = run_plan(plan, data_blocks)
            naive = run_naive(data_blocks)
            rows.append(
                (
                    f"{fraction:.0%}",
                    plan.stage.value,
                    plan.replicas,
                    recommended,
                    naive,
                    recommended / naive,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nSection 4.8 lifecycle: recommended vs never-replicate layout")
        print(
            format_table(
                ("fill", "stage", "NR", "recommended_KB/s", "naive_KB/s", "ratio"),
                rows,
                float_format="{:.3f}",
            )
        )

    by_fill = {row[0]: row for row in rows}
    # While filling, spare-capacity replication is a measurable free win
    # (a few percent: the partially filled naive layout is itself fast,
    # so the margin is smaller than the full-jukebox replication gains).
    assert by_fill["50%"][1] == LifecycleStage.FILLING.value
    assert by_fill["50%"][5] > 1.02
    # At the brim the plans converge to the same unreplicated layout.
    assert by_fill["100%"][1] == LifecycleStage.RECAPTURED.value
    assert by_fill["100%"][5] == pytest.approx(1.0, abs=0.02)
    # The advantage decays monotonically-ish as spare capacity shrinks.
    ratios = [row[5] for row in rows]
    assert ratios[0] >= ratios[-1]
