"""Extension benchmark: delta-file write-back cost.

The paper's workload section assumes writes are staged in disk-resident
delta files and hardened to tape "during idle time or piggybacked on
the read schedule", asserting implicitly that this keeps the read
service competitive.  This bench quantifies that: read throughput under
increasing piggybacked write load, and the write-hardening latency the
delta buffer achieves.
"""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.layout import PlacementSpec, build_catalog
from repro.report import format_table
from repro.service import MetricsCollector
from repro.service.writeback import WritebackSimulator
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew

from _util import HORIZON_S

BLOCK = 16.0


def run_with_writes(write_interarrival_s):
    catalog = build_catalog(PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, 7 * 1024.0)
    simulator = WritebackSimulator(
        env=Environment(),
        jukebox=Jukebox.build(),
        catalog=catalog,
        scheduler=make_scheduler("dynamic-max-bandwidth"),
        source=ClosedSource(60, HotColdSkew(40.0), catalog, random.Random(21)),
        metrics=MetricsCollector(block_mb=BLOCK, warmup_s=HORIZON_S * 0.1),
        write_interarrival_s=write_interarrival_s,
        write_rng=random.Random(22) if write_interarrival_s else None,
    )
    report = simulator.run(HORIZON_S)
    return report, simulator


@pytest.mark.benchmark(group="writeback")
def test_writeback_piggyback_cost(benchmark, capsys):
    def sweep():
        results = {}
        for write_interarrival_s in (None, 600.0, 200.0, 100.0):
            results[write_interarrival_s] = run_with_writes(write_interarrival_s)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for write_interarrival_s, (report, simulator) in results.items():
        label = (
            "none"
            if write_interarrival_s is None
            else f"1/{write_interarrival_s:g}s"
        )
        rows.append(
            (
                label,
                report.throughput_kb_s,
                simulator.delta.written_total,
                simulator.piggybacked_writes,
                simulator.delta.write_latency.mean if simulator.delta.written_total else 0.0,
                len(simulator.delta),
            )
        )
    with capsys.disabled():
        print("\ndelta-file write-back under read load (Q-60, PH-10 RH-40):")
        print(
            format_table(
                ("writes", "read_KB/s", "hardened", "piggybacked",
                 "write_lat_s", "backlog"),
                rows,
            )
        )

    baseline = results[None][0].throughput_kb_s
    moderate = results[600.0][0].throughput_kb_s
    heavy = results[100.0][0].throughput_kb_s
    # Piggybacking makes the *positioning* free, not the transfer: a
    # 16 MB write still occupies ~28 s of drive time.  One write per
    # 600 s costs ~7% of read throughput and one per 100 s about 40% —
    # both match the transfer-time budget, which is the point: the
    # mechanism's overhead is the unavoidable data movement only.
    assert moderate > 0.88 * baseline
    assert heavy > 0.55 * baseline
    # Writes actually harden, and the backlog stays bounded.
    for write_interarrival_s, (report, simulator) in results.items():
        if write_interarrival_s is not None:
            assert simulator.delta.written_total > 0
            expected = HORIZON_S / write_interarrival_s
            assert len(simulator.delta) < expected / 2
