"""Campaign engine benchmark: parallel speedup and cache-hit latency.

Runs a figure-sized campaign (the Figure 6 replica grid: 4 replication
degrees x 5 queue lengths = 20 configs) three ways —

1. serial, no cache (the historical ``run_experiment`` loop),
2. ``jobs=4`` workers, writing the content-addressed cache,
3. again with a warm cache (every point must be a hit),

asserts the parallel and cached results are bit-identical to the serial
ones, and records wall-clock numbers into ``BENCH_campaign.json`` at
the repository root.  The >= 2x speedup assertion only applies when the
host actually has >= 4 CPUs; the JSON records whatever was measured.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign
from repro.experiments.config import ExperimentConfig
from repro.layout import Layout

from _util import HORIZON_S

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

REPLICA_COUNTS = (0, 1, 2, 4)
QUEUE_LENGTHS = (10, 20, 30, 40, 50)


def _grid():
    """The Figure 6-style campaign: NR x queue-length, 20 configs."""
    return [
        ExperimentConfig(
            horizon_s=HORIZON_S,
            layout=Layout.VERTICAL,
            replicas=replicas,
            start_position=1.0 if replicas else 0.0,
            queue_length=queue_length,
        )
        for replicas in REPLICA_COUNTS
        for queue_length in QUEUE_LENGTHS
    ]


@pytest.mark.benchmark(group="campaign")
def test_campaign_speedup_and_cache_latency(benchmark, capsys, tmp_path):
    configs = _grid()
    assert len(configs) >= 20  # "figure-sized" per the acceptance bar

    started = time.monotonic()
    serial = Campaign(jobs=1).submit(configs)
    serial_s = time.monotonic() - started
    assert serial.stats.failures == 0

    cache_dir = tmp_path / "cache"

    def parallel_submit():
        return Campaign(jobs=4, cache_dir=cache_dir).submit(configs)

    started = time.monotonic()
    parallel = benchmark.pedantic(parallel_submit, rounds=1, iterations=1)
    parallel_s = time.monotonic() - started
    for config in configs:
        assert serial.require(config).report == parallel.require(config).report

    started = time.monotonic()
    cached = Campaign(jobs=4, cache_dir=cache_dir).submit(configs)
    cached_s = time.monotonic() - started
    assert cached.stats.hit_fraction >= 0.95
    for config in configs:
        assert serial.require(config).report == cached.require(config).report

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    payload = {
        "configs": len(configs),
        "unique": serial.stats.unique,
        "horizon_s": HORIZON_S,
        "cpu_count": os.cpu_count(),
        "jobs": 4,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_fraction": cached.stats.hit_fraction,
        "cached_wall_s": round(cached_s, 4),
        "cache_hit_latency_ms_per_point": round(
            1000.0 * cached_s / len(configs), 3
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print("\n--- campaign engine ---")
        for key, value in payload.items():
            print(f"{key:30s} {value}")

    # Cache hits must be far cheaper than simulating.
    assert cached_s < serial_s / 2
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >= 2x with 4 workers, got {speedup:.2f}x"
