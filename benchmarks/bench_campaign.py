"""Campaign engine benchmark: parallel speedup, dispatch overhead, cache.

Runs a figure-sized campaign (the Figure 6 replica grid: 4 replication
degrees x 5 queue lengths = 20 configs) three ways —

1. serial, no cache (the historical ``run_experiment`` loop),
2. parallel with the supervised pool, writing the content-addressed
   cache,
3. again with a warm cache (every point must be a hit),

asserts the parallel and cached results are bit-identical to the serial
ones, and records the measurement into ``BENCH_campaign.json``
(schema ``bench-campaign/2``) at the repository root.

Methodology (fixing the v1 file's 0.9x headline): the worker count
defaults to the machine's CPU count (capped at 4, floored at 2 so the
chunked-dispatch path is always exercised), the dispatch overhead is
broken out per component (payload bytes pickled, worker startup and
initializer milliseconds, dispatch latency per point) from the pool's
own accounting, and any run where ``jobs`` exceeds ``cpu_count`` is
flagged in a ``warnings`` list instead of being passed off as a
parallel-scaling measurement.

Speedup gates are ratio-based and only enforced where they are
meaningful: on a >= 4-core machine with 4 workers the run must beat
``--min-speedup`` (default 2.8 = the 4x target minus the 30% shared
runner tolerance); oversubscribed machines record their numbers but
are never gated on speedup.

Runs standalone (``python benchmarks/bench_campaign.py``) with no
pytest dependency.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings as warnings_module
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_campaign.json"
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.campaign import Campaign  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.layout import Layout  # noqa: E402

from _util import HORIZON_S  # noqa: E402

SCHEMA = "bench-campaign/2"

REPLICA_COUNTS = (0, 1, 2, 4)
QUEUE_LENGTHS = (10, 20, 30, 40, 50)


def default_jobs(cpu_count: int) -> int:
    """Worker count clamped to the machine: ``min(4, cpu_count)``.

    Floored at 2 so the supervised pool (and its overhead accounting)
    is exercised even on a single-core box — that run is flagged as
    oversubscribed rather than being presented as a scaling result.
    """
    return min(4, max(2, cpu_count))


def _grid():
    """The Figure 6-style campaign: NR x queue-length, 20 configs."""
    return [
        ExperimentConfig(
            horizon_s=HORIZON_S,
            layout=Layout.VERTICAL,
            replicas=replicas,
            start_position=1.0 if replicas else 0.0,
            queue_length=queue_length,
        )
        for replicas in REPLICA_COUNTS
        for queue_length in QUEUE_LENGTHS
    ]


def _mean_ms(values) -> float:
    return round(sum(values) / len(values), 2) if values else 0.0


def measure(jobs: int, cache_dir: Path) -> dict:
    """Serial / parallel / cached passes; returns the payload dict."""
    configs = _grid()
    assert len(configs) >= 20  # "figure-sized" per the acceptance bar
    cpu_count = os.cpu_count() or 1
    run_warnings = []

    started = time.monotonic()
    serial = Campaign(jobs=1).submit(configs)
    serial_s = time.monotonic() - started
    assert serial.stats.failures == 0

    with warnings_module.catch_warnings(record=True) as caught:
        warnings_module.simplefilter("always")
        parallel_campaign = Campaign(jobs=jobs, cache_dir=cache_dir)
    run_warnings.extend(
        str(warning.message)
        for warning in caught
        if issubclass(warning.category, RuntimeWarning)
    )
    started = time.monotonic()
    parallel = parallel_campaign.submit(configs)
    parallel_s = time.monotonic() - started
    for config in configs:
        assert serial.require(config).report == parallel.require(config).report

    started = time.monotonic()
    with warnings_module.catch_warnings():
        warnings_module.simplefilter("ignore", RuntimeWarning)
        cached = Campaign(jobs=jobs, cache_dir=cache_dir).submit(configs)
    cached_s = time.monotonic() - started
    assert cached.stats.hit_fraction >= 0.95
    for config in configs:
        assert serial.require(config).report == cached.require(config).report

    overhead = parallel_campaign.last_overhead or {}
    points = overhead.get("points_dispatched") or len(configs)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    return {
        "schema": SCHEMA,
        "configs": len(configs),
        "unique": serial.stats.unique,
        "horizon_s": HORIZON_S,
        "cpu_count": cpu_count,
        "jobs": jobs,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_fraction": cached.stats.hit_fraction,
        "cached_wall_s": round(cached_s, 4),
        "cache_hit_latency_ms_per_point": round(
            1000.0 * cached_s / len(configs), 3
        ),
        "overhead": {
            "chunk_size": overhead.get("chunk_size", 0),
            "chunks_dispatched": overhead.get("chunks_dispatched", 0),
            "points_dispatched": overhead.get("points_dispatched", 0),
            "payload_bytes": overhead.get("payload_bytes", 0),
            "payload_bytes_per_point": round(
                overhead.get("payload_bytes", 0) / points, 1
            ),
            "dispatch_latency_ms_per_point": round(
                1000.0 * overhead.get("dispatch_s", 0.0) / points, 4
            ),
            "worker_startup_ms_mean": _mean_ms(
                overhead.get("worker_startup_ms", ())
            ),
            "worker_initializer_ms_mean": _mean_ms(
                overhead.get("worker_initializer_ms", ())
            ),
        },
        "warnings": run_warnings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for the parallel pass "
        "(default: min(4, cpu_count), floored at 2)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.8,
        help="speedup floor enforced when jobs >= 4 run on >= 4 CPUs "
        "(default 2.8: the 4x target minus 30%% runner tolerance)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=str(BENCH_JSON), help="output path"
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else default_jobs(cpu_count)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        payload = measure(jobs, Path(tmp) / "cache")

    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    print("--- campaign engine ---")
    for key, value in payload.items():
        if isinstance(value, dict):
            print(f"{key}:")
            for sub_key, sub_value in value.items():
                print(f"  {sub_key:32s} {sub_value}")
        else:
            print(f"{key:34s} {value}")
    print(f"\nwrote {args.output}")

    # Cache hits must be far cheaper than simulating, on any machine.
    if not payload["cached_wall_s"] < payload["serial_wall_s"] / 2:
        print("campaign gate: FAIL — warm cache not 2x cheaper than serial")
        return 1
    # The speedup gate only means something with real cores under the
    # workers; an oversubscribed run records its numbers, flagged.
    if cpu_count >= 4 and jobs >= 4:
        if payload["speedup"] < args.min_speedup:
            print(
                f"campaign gate: FAIL — speedup {payload['speedup']:.2f}x "
                f"below the {args.min_speedup:.2f}x floor on "
                f"{cpu_count} CPUs with {jobs} workers"
            )
            return 1
        print(f"campaign gate: OK ({payload['speedup']:.2f}x)")
    elif payload["warnings"]:
        print("campaign gate: skipped (oversubscribed):", payload["warnings"][0])
    else:
        print("campaign gate: skipped (fewer than 4 CPUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
