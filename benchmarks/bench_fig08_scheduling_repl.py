"""Figure 8: scheduling algorithms with full replication.

Paper claims (Section 4.6): the envelope algorithms' globally optimized
schedules are superior with replicated data; max-bandwidth envelope
gains ~6% throughput and ~5% response time over dynamic max-bandwidth;
with no replicas it degenerates to dynamic max-bandwidth.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURE8_ALGORITHMS, figure8
from repro.experiments.runner import run_experiment

from _util import HORIZON_S, QUEUES, mean_delay, mean_throughput, show, regenerate


@pytest.mark.benchmark(group="fig08")
def test_fig08_scheduling_with_replication(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure8,
        horizon_s=HORIZON_S,
        algorithms=FIGURE8_ALGORITHMS,
        queue_lengths=QUEUES,
    )
    show(capsys, data)
    series = data.series

    envelope = mean_throughput(series["envelope-max-bandwidth"])
    dynamic = mean_throughput(series["dynamic-max-bandwidth"])
    static = mean_throughput(series["static-max-bandwidth"])

    # Envelope beats dynamic (paper: ~6%; accept >= 2%), dynamic beats static.
    gain = envelope / dynamic - 1.0
    assert gain > 0.02, f"envelope gain over dynamic only {gain:.1%}"
    assert dynamic > static * 0.99

    # Delay improves alongside throughput.
    assert mean_delay(series["envelope-max-bandwidth"]) < mean_delay(
        series["dynamic-max-bandwidth"]
    )

    # All three envelope variants are at least as good as the plain
    # dynamic algorithms they extend.
    for name in ("envelope-max-requests", "envelope-oldest-max-requests"):
        assert mean_throughput(series[name]) > 0.97 * dynamic, name


@pytest.mark.benchmark(group="fig08")
def test_fig08_envelope_degenerates_without_replicas(benchmark, capsys):
    """With NR-0 every block is envelope-pinned, so envelope-max-bandwidth
    must match dynamic-max-bandwidth closely (paper's degeneration note)."""

    def run_pair():
        results = {}
        for scheduler in ("dynamic-max-bandwidth", "envelope-max-bandwidth"):
            config = ExperimentConfig(
                scheduler=scheduler,
                replicas=0,
                start_position=0.0,
                queue_length=60,
                horizon_s=HORIZON_S,
            )
            results[scheduler] = run_experiment(config).throughput_kb_s
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    ratio = results["envelope-max-bandwidth"] / results["dynamic-max-bandwidth"]
    assert ratio == pytest.approx(1.0, abs=0.05)
    with capsys.disabled():
        print(
            f"\nNR-0 degeneration: envelope/dynamic throughput ratio "
            f"{ratio:.4f} (expected ~1)"
        )
