"""Figure 10: storage expansion and cost-performance of replication.

Paper claims (Section 4.8): the expansion factor is E = 1 + NR*PH/100
(10a); per dollar, replication helps only under high skew — up to
~8-10% at very high skew, while moderate skew can lose a few percent
(10b).
"""

import pytest

from repro.experiments.figures import figure10a, figure10b

from _util import HORIZON_S, show, regenerate


@pytest.mark.benchmark(group="fig10")
def test_fig10a_expansion_factor(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure10a,
        replica_counts=tuple(range(10)),
        percent_hot_values=(5.0, 10.0, 20.0, 30.0),
    )
    show(capsys, data)
    for label, row in data.series.items():
        percent_hot = float(label.split("-")[1])
        for replicas, expansion in row:
            assert expansion == pytest.approx(1 + replicas * percent_hot / 100)


@pytest.mark.benchmark(group="fig10")
def test_fig10b_cost_performance(benchmark, capsys):
    data = regenerate(
        benchmark,
        figure10b,
        horizon_s=HORIZON_S,
        skews=(20.0, 40.0, 80.0),
        replica_counts=(0, 2, 9),
        base_queue_length=60,
    )
    show(capsys, data)
    curves = {label: dict(points) for label, points in data.series.items()}

    # Every curve is anchored at 1.0 for NR-0.
    for label, curve in curves.items():
        assert curve[0] == 1.0, label

    # High skew: replication pays off per dollar (paper: ~8-10%).
    assert curves["RH-80"][9] > 1.0
    # Moderate/low skew: at best marginal, possibly a small loss
    # (paper: "degrades the cost-performance ratio by as much as 3%").
    assert curves["RH-20"][9] < 1.05
    # The ordering by skew holds for full replication.
    assert curves["RH-80"][9] > curves["RH-40"][9] > curves["RH-20"][9] * 0.98
