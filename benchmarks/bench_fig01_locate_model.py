"""Figure 1: locate time as a function of distance (1 MB logical blocks).

Regenerates the four linear segments of the paper's measured Exabyte
EXB-8505XL locate-time model and re-runs the paper's validation
experiment: ten random walks of 100 locate+read operations, comparing
the analytic sweep-cost predictions against step-by-step drive
execution (the paper reported <=0.6% locate-time error for its model
against hardware; our model *is* the fitted function, so the check here
is internal consistency of predictor vs. executor).
"""

import random

import pytest

from repro.core import sweep_cost
from repro.report import format_table
from repro.tape import EXB_8505XL, Jukebox

DISTANCES = (1, 4, 8, 16, 28, 29, 64, 256, 1024, 4096, 7000)


def locate_rows():
    rows = []
    for distance in DISTANCES:
        rows.append(
            (
                distance,
                EXB_8505XL.locate_forward(float(distance)),
                EXB_8505XL.locate_reverse(float(distance)),
                "short" if distance <= 28 else "long",
            )
        )
    return rows


def random_walk_error(seed: int, steps: int = 100) -> float:
    """Relative error between predicted and executed walk time."""
    rng = random.Random(seed)
    jukebox = Jukebox.build()
    jukebox.switch_to(0)
    predicted = 0.0
    actual = 0.0
    for _ in range(steps):
        target = float(rng.randrange(0, 7000))
        startup = jukebox.drive.read_startup_pending
        predicted += sweep_cost(
            EXB_8505XL, jukebox.head_mb, [target], 1.0, startup_pending=startup
        ).total_s
        actual += jukebox.access(target, 1.0)
    return abs(predicted - actual) / actual


@pytest.mark.benchmark(group="fig01")
def test_fig01_locate_model(benchmark, capsys):
    rows = benchmark.pedantic(locate_rows, rounds=1, iterations=1)

    # The four segments: short/long x forward/reverse, linear in distance.
    forward = {distance: fwd for distance, fwd, _rev, _seg in rows}
    assert forward[1] == pytest.approx(4.834 + 0.378)
    assert forward[4096] == pytest.approx(14.342 + 0.028 * 4096)
    # Long-distance motion is far cheaper per MB than short-distance.
    short_rate = (forward[28] - forward[16]) / 12
    long_rate = (forward[4096] - forward[1024]) / 3072
    assert short_rate == pytest.approx(0.378)
    assert long_rate == pytest.approx(0.028)

    # Validation random walks: predictor matches executor exactly.
    errors = [random_walk_error(seed) for seed in range(10)]
    assert max(errors) < 1e-9

    with capsys.disabled():
        print()
        print("Figure 1: Locate Time as a Function of Distance (1 MB blocks)")
        print(
            format_table(
                ("distance_mb", "forward_s", "reverse_s", "segment"),
                rows,
                float_format="{:.2f}",
            )
        )
        print(
            f"\nvalidation: 10 random walks x 100 locates, "
            f"max predictor-vs-executor error {max(errors):.2e} "
            "(paper vs hardware: 0.6%)"
        )
