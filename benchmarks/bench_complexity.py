"""Section 3.3: measured scaling of the envelope major rescheduler.

The paper states the major rescheduler runs in O(n^2 * t^2) time for n
requests and t tapes.  This benchmark measures wall-clock scaling of
the envelope computation in n (at the jukebox's t=10) and sanity-checks
that growth stays polynomial: quadrupling n should cost well under the
64x a cubic algorithm would show.
"""

import random
import time

import pytest

from repro.core import EnvelopeComputer
from repro.layout import PlacementSpec, Layout, build_catalog
from repro.tape import EXB_8505XL
from repro.workload import HotColdSkew, RequestFactory

TAPES = 10


def make_requests(catalog, count, seed):
    rng = random.Random(seed)
    skew = HotColdSkew(40.0)
    factory = RequestFactory()
    return [
        factory.create(block_id=skew.draw_block(rng, catalog), arrival_s=0.0)
        for _ in range(count)
    ]


def envelope_time(catalog, requests, repeats=5):
    # One computer per size, reused across repeats — constructing it is
    # not the operation under test, and compute() takes the caller's
    # list as-is (no extra list(...) copy).
    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=TAPES,
        mounted_id=0,
        head_mb=0.0,
    )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        computer.compute(requests)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="complexity")
def test_envelope_rescheduler_scaling(benchmark, capsys):
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=9, start_position=1.0
    )
    catalog = build_catalog(spec, TAPES, 7 * 1024.0)

    sizes = (35, 140, 560)
    timings = {}
    for size in sizes:
        requests = make_requests(catalog, size, seed=7)
        timings[size] = envelope_time(catalog, requests)

    # Benchmark the paper's operating point (n=140, the heaviest queue).
    requests_140 = make_requests(catalog, 140, seed=7)
    computer_140 = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=TAPES,
        mounted_id=0,
        head_mb=0.0,
    )
    benchmark(lambda: computer_140.compute(requests_140))

    growth_low = timings[140] / timings[35]
    growth_high = timings[560] / timings[140]
    with capsys.disabled():
        print("\nEnvelope major rescheduler scaling (t=10 tapes):")
        for size in sizes:
            rate = size / timings[size]
            print(
                f"  n={size:4d}: {timings[size] * 1e3:8.2f} ms "
                f"({rate:10.0f} requests scheduled/s)"
            )
        print(f"  growth 35->140: {growth_low:.1f}x, 140->560: {growth_high:.1f}x")
        print("  (O(n^2 t^2) bound predicts <= 16x per 4x in n)")

    # Polynomial sanity: 4x requests should stay well under cubic blowup,
    # with generous slack for timer noise on small inputs.
    assert growth_high < 64.0
    assert timings[140] < 1.0, "n=140 reschedule should take well under a second"
